//! Golden corpus + property tests for the ros-lint lexer.
//!
//! Two layers of evidence that the lexer is *total* and *lossless*:
//!
//! 1. A golden corpus of corner-case fragments (the exact shapes that
//!    broke the old line-oriented Scanner) with pinned token-kind
//!    sequences — any classification drift fails loudly.
//! 2. A proptest property over randomly assembled fragment soups:
//!    lexing never panics, spans tile the input exactly, and
//!    re-concatenating the token slices reproduces the input's
//!    non-whitespace bytes.

use proptest::prelude::*;
use ros_lint::lexer::{lex, TokenKind};

/// Token-kind names in lexing order, whitespace elided by `lex` itself.
fn kinds(src: &str) -> Vec<&'static str> {
    lex(src)
        .iter()
        .map(|t| match t.kind {
            TokenKind::Ident => "id",
            TokenKind::RawIdent => "rawid",
            TokenKind::Lifetime => "life",
            TokenKind::Char => "char",
            TokenKind::Byte => "byte",
            TokenKind::Str => "str",
            TokenKind::RawStr => "rawstr",
            TokenKind::ByteStr => "bytestr",
            TokenKind::RawByteStr => "rawbytestr",
            TokenKind::Int => "int",
            TokenKind::Float => "float",
            TokenKind::LineComment => "line",
            TokenKind::BlockComment => "block",
            TokenKind::DocComment => "doc",
            TokenKind::Punct => "p",
            TokenKind::Unknown => "unk",
        })
        .collect()
}

/// The input minus ASCII whitespace — the invariant content a lossless
/// lexer must preserve.
fn strip_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_ascii_whitespace()).collect()
}

fn assert_lossless(src: &str) {
    let toks = lex(src);
    // Spans are in-bounds, ordered, non-overlapping, on char edges.
    let mut prev_end = 0usize;
    for t in &toks {
        assert!(t.start >= prev_end, "overlap at {}..{} in {src:?}", t.start, t.end);
        assert!(t.end <= src.len() && t.start < t.end);
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        // Inter-token gaps are pure whitespace.
        assert!(
            src[prev_end..t.start].chars().all(|c| c.is_whitespace()),
            "non-whitespace dropped before {:?} in {src:?}",
            t.text(src)
        );
        prev_end = t.end;
    }
    assert!(src[prev_end..].chars().all(|c| c.is_whitespace()));
    // Concatenated slices reproduce the non-whitespace content.
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect::<Vec<_>>().join(" ");
    assert_eq!(strip_ws(&rebuilt), strip_ws(src), "lossy lex of {src:?}");
}

/// The golden corpus: each entry is `(fragment, pinned kind sequence)`.
/// These are the shapes that defeat regex- or line-based scanners.
const GOLDEN: &[(&str, &[&str])] = &[
    // The '"' Scanner bug: a char literal holding a double quote used
    // to open a phantom string and swallow the rest of the line.
    ("let c = '\"'; x.unwrap();", &["id", "id", "p", "char", "p", "id", "p", "id", "p", "p", "p"]),
    // Lifetime vs char: 'a is a lifetime, 'a' is a char.
    ("&'a str", &["p", "life", "id"]),
    ("'x'", &["char"]),
    ("'\\''", &["char"]),
    // Nested block comments to depth 3 are ONE token.
    ("/* a /* b /* c */ b */ a */ x", &["block", "id"]),
    // `/**/` and `/***/` are NOT doc comments; `////` is not doc.
    ("/**/ /***/ //// nope", &["block", "block", "line"]),
    ("/// outer\n//! inner", &["doc", "doc"]),
    // Raw strings with any number of hashes; quotes inside are inert.
    ("r\"plain\"", &["rawstr"]),
    ("r#\"has \" quote\"#", &["rawstr"]),
    ("r##\"ends \"# not yet\"##", &["rawstr"]),
    ("r###\"deep \"## nested\"###", &["rawstr"]),
    ("br##\"raw bytes \"# too\"##", &["rawbytestr"]),
    // Raw identifiers are not raw strings.
    ("r#type", &["rawid"]),
    ("let r#fn = 1;", &["id", "rawid", "p", "int", "p"]),
    // Byte and byte-string literals.
    ("b'x' b\"bytes\\\"esc\"", &["byte", "bytestr"]),
    // Float vs int vs range vs method call on an int literal.
    ("1..2", &["int", "p", "int"]),
    ("1.0..2.0", &["float", "p", "float"]),
    ("1.max(2)", &["int", "p", "id", "p", "int", "p"]),
    ("1.5e-3 0x_ff 1_000u64 2f64", &["float", "int", "int", "float"]),
    // Maximal-munch operators.
    ("a..=b a::<B>::c x >>= 1", &["id", "p", "id", "id", "p", "p", "id", "p", "p", "id", "id", "p", "int"]),
    // Escapes and a line continuation inside a string are one token.
    ("\"a\\\"b\\\\\" 'q'", &["str", "char"]),
    ("\"line\\\n  cont\"", &["str"]),
    // Total on garbage: unknown bytes classify, never panic. `\` is
    // no token start; non-ASCII (`§`) folds into identifiers.
    ("fn f() { \\ }", &["id", "id", "p", "p", "p", "unk", "p"]),
    ("fn f() { § }", &["id", "id", "p", "p", "p", "id", "p"]),
];

#[test]
fn golden_corpus_kinds_are_pinned() {
    for (src, want) in GOLDEN {
        assert_eq!(&kinds(src), want, "kind drift for {src:?}");
    }
}

#[test]
fn golden_corpus_is_lossless() {
    for (src, _) in GOLDEN {
        assert_lossless(src);
    }
}

#[test]
fn real_workspace_sources_are_lossless() {
    // The lexer's own source plus this test file: real Rust with raw
    // strings, doc comments, and every quoting style in this crate.
    for src in [
        include_str!("../src/lexer.rs"),
        include_str!("../src/rules.rs"),
        include_str!("lexer_corpus.rs"),
    ] {
        assert_lossless(src);
    }
}

/// Fragment table the property test assembles soups from. Mixing
/// these adjacently exercises every boundary pair (comment-then-raw,
/// char-then-string, punct-then-punct munching, …).
const FRAGMENTS: &[&str] = &[
    "fn", "ident", "r#match", "'a", "'x'", "'\"'", "b'q'", "0", "42u32", "1.5", "2e-3",
    "\"str \\\" esc\"", "r\"raw\"", "r#\"raw # \"#", "r##\"raw \"# deep\"##", "b\"bs\"",
    "br#\"rbs\"#", "// line\n", "/// doc\n", "//! inner\n", "/* blk */", "/* o /* i */ o */",
    "==", "..=", "::", "->", "=>", "<<=", "(", ")", "{", "}", "[", "]", ";", ",", "#", "?",
    "§", "\\",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_random_fragment_soup_is_total_and_lossless(
        picks in prop::collection::vec((0usize..38, 0u8..3), 0..64)
    ) {
        let mut src = String::new();
        for (i, sep) in &picks {
            src.push_str(FRAGMENTS[*i % FRAGMENTS.len()]);
            src.push_str(match sep {
                0 => " ",
                1 => "\n",
                _ => "\t ",
            });
        }
        // Never panics, spans tile, non-whitespace content survives.
        assert_lossless(&src);
        // Line numbers are monotone non-decreasing and 1-based.
        let toks = lex(&src);
        let mut prev = 1usize;
        for t in &toks {
            prop_assert!(t.line >= prev && t.line >= 1);
            prev = t.line;
        }
    }

    #[test]
    fn lexing_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(0u8..255, 0..200)
    ) {
        // Interpret as lossy UTF-8: any text input must lex totally.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        for t in &toks {
            prop_assert!(t.end <= src.len());
        }
    }
}
