//! Golden corpus for the ros-lint lock/channel graph.
//!
//! Mirrors `syntax_corpus.rs` one level up the stack: where that file
//! pins the brace tree and call-site extraction, this one pins what
//! [`ros_lint::lockgraph`] recovers from them — acquisition sites and
//! their canonical lock ids, guard liveness (scope-bound vs
//! statement-temporary, `drop` truncation), blocking-op capture, and
//! may-lock propagation through [`ros_lint::callgraph::Resolver`] —
//! as compact per-fn summary strings so a behaviour shift in any layer
//! below moves a pinned expectation here.

use std::sync::atomic::{AtomicU64, Ordering};

use ros_lint::callgraph::{self, Resolver};
use ros_lint::lockgraph::{
    self, AcquireUnder, BlockingUnder, CallUnder, Held, LockGraph, NodeLocks, BLOCKING_METHODS,
    LOCK_METHODS, UBIQUITOUS_CALLEES,
};
use ros_lint::rules;
use ros_lint::syntax::CallSite;
use ros_lint::{FileAnalysis, FileRole};

fn fa(rel: &str, src: &str) -> FileAnalysis {
    let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
    FileAnalysis::new(rel.to_string(), crate_name, FileRole::Library, src.to_string())
}

fn graph_and_locks(src: &str) -> (callgraph::CallGraph, LockGraph) {
    let files = [fa("crates/demo/src/lib.rs", src)];
    let g = callgraph::build(&files);
    let lg = lockgraph::build(&files, &g);
    (g, lg)
}

fn fmt_held(held: &[Held]) -> String {
    let ids: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
    format!("[{}]", ids.join(","))
}

/// One fn's lock behaviour as a pinnable line: acquisitions, blocking
/// ops, then guarded calls, each with the lock ids live at the event.
fn node_summary(nl: &NodeLocks) -> String {
    let mut parts: Vec<String> = Vec::new();
    for a in &nl.acquires {
        let a: &AcquireUnder = a;
        parts.push(format!("acq {} {}", a.lock, fmt_held(&a.held)));
    }
    for b in &nl.blocking {
        let b: &BlockingUnder = b;
        parts.push(format!("{} {} {}", b.op, b.recv_name, fmt_held(&b.held)));
    }
    for c in &nl.calls_under {
        let c: &CallUnder = c;
        parts.push(format!("call {} {}", c.callee, fmt_held(&c.held)));
    }
    parts.join("; ")
}

fn summary_of(src: &str, fn_name: &str) -> String {
    let (g, lg) = graph_and_locks(src);
    let i = g
        .nodes
        .iter()
        .position(|n| n.name == fn_name)
        .unwrap_or_else(|| panic!("no node `{fn_name}`"));
    node_summary(&lg.per_node[i])
}

/// The golden corpus: `(source, fn, pinned summary)`. These are the
/// shapes the three lock rules stand on.
const GOLDEN: &[(&str, &str, &str)] = &[
    // Nested guards accumulate in source order; the guarded call sees
    // both.
    (
        "pub fn f(a: M, b: M) {\n    let ga = a.lock();\n    let gb = b.lock();\n    step();\n}\npub fn step() {}\n",
        "f",
        "acq demo:a []; acq demo:b [demo:a]; call step [demo:a,demo:b]",
    ),
    // A guard bound inside an inner brace dies at that brace's close.
    (
        "pub fn f(a: M) {\n    {\n        let g = a.lock();\n        step();\n    }\n    step();\n}\npub fn step() {}\n",
        "f",
        "acq demo:a []; call step [demo:a]",
    ),
    // `read`/`write` are acquisitions of the same lock; `drop` ends
    // the first guard before the second site.
    (
        "pub fn f(s: S) {\n    let r = s.read();\n    drop(r);\n    let w = s.write();\n}\n",
        "f",
        "acq demo:s []; acq demo:s []",
    ),
    // A channel send while a guard is live records both the op and the
    // held set.
    (
        "pub fn f(m: M, tx: Tx) {\n    let g = m.lock();\n    tx.send(1);\n}\n",
        "f",
        "acq demo:m []; send tx [demo:m]",
    ),
    // A wait whose argument is not a bare ident keeps `wait_arg: None`
    // (and so stays a blocking op for the rules).
    (
        "pub fn f(cv: Cv, m: M) {\n    let g = m.lock();\n    cv.wait(g2());\n}\n",
        "f",
        "acq demo:m []; wait cv [demo:m]",
    ),
    // A self-rooted chain canonicalizes to the impl owner no matter
    // how deep the field path is.
    (
        "pub struct Cache { inner: usize }\nimpl Cache {\n    pub fn get(&self) -> usize { let g = self.state.buf.lock(); 0 }\n}\n",
        "get",
        "acq demo:Cache []",
    ),
    // A path-rooted chain takes the ident nearest the call.
    (
        "pub fn f() { let g = crate::sink::SINK.lock(); emit(); }\npub fn emit() {}\n",
        "f",
        "acq demo:SINK []; call emit [demo:SINK]",
    ),
];

#[test]
fn golden_lock_summaries_are_pinned() {
    for (src, fn_name, want) in GOLDEN {
        let got = summary_of(src, fn_name);
        assert_eq!(&got, want, "source:\n{src}");
    }
}

#[test]
fn may_lock_reaches_through_a_call_chain() {
    let src = "\
pub fn a() { b(); }
pub fn b() { c(); }
pub fn c() { let g = STATE.lock(); }
";
    let (g, lg) = graph_and_locks(src);
    for name in ["a", "b", "c"] {
        let i = g.nodes.iter().position(|n| n.name == name).expect("node");
        assert!(
            lg.may_lock[i].contains("demo:STATE"),
            "`{name}` must carry the transitive lock: {:?}",
            lg.may_lock[i]
        );
    }
}

#[test]
fn resolver_precedence_is_owner_then_namespace() {
    let src = "\
pub fn free_fn() {}
pub struct T;
impl T { pub fn m(&self) {} }
pub struct U;
impl U { pub fn m(&self) {} }
";
    let files = [fa("crates/demo/src/lib.rs", src)];
    let g = callgraph::build(&files);
    let resolver = Resolver::new(&g.nodes);
    let call = |name: &str, qualifier: Option<&str>, method: bool| CallSite {
        name: name.to_string(),
        qualifier: qualifier.map(str::to_string),
        method,
        line: 1,
        ci: 0,
    };
    let names = |ids: &[usize]| -> Vec<String> {
        ids.iter().map(|&i| g.nodes[i].qualified_name()).collect()
    };
    assert_eq!(names(resolver.resolve(&call("free_fn", None, false))), ["free_fn"]);
    // An unqualified method call is ambiguous across impls: both.
    assert_eq!(names(resolver.resolve(&call("m", None, true))), ["T::m", "U::m"]);
    // A known-owner qualifier pins the impl.
    assert_eq!(names(resolver.resolve(&call("m", Some("T"), false))), ["T::m"]);
    // A module-ish qualifier falls back to the free namespace.
    assert_eq!(names(resolver.resolve(&call("free_fn", Some("util"), false))), ["free_fn"]);
    assert!(resolver.resolve(&call("nope", None, false)).is_empty());
}

#[test]
fn lock_and_blocking_methods_are_denylisted_for_propagation() {
    // The rules handle direct `.lock()`/`.send()` sites themselves;
    // the call graph must not ALSO link such a call to some workspace
    // fn that shares the name, or every site would double-report.
    for m in LOCK_METHODS {
        assert!(UBIQUITOUS_CALLEES.contains(m), "`{m}` missing from denylist");
    }
    for m in BLOCKING_METHODS {
        assert!(UBIQUITOUS_CALLEES.contains(m), "`{m}` missing from denylist");
    }
}

static TICKS: AtomicU64 = AtomicU64::new(0);

fn fake_clock() -> u64 {
    TICKS.fetch_add(7, Ordering::Relaxed)
}

#[test]
fn check_all_timed_matches_check_all_and_measures_passes() {
    let files = [fa(
        "crates/demo/src/lib.rs",
        "//! Demo.\n\n/// D.\npub fn f(a: M, b: M) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::f(m(), m()); }\n}\n",
    )];
    let plain = rules::check_all(&files);
    let files2 = [fa(
        "crates/demo/src/lib.rs",
        "//! Demo.\n\n/// D.\npub fn f(a: M, b: M) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::f(m(), m()); }\n}\n",
    )];
    let (timed, callgraph_ns, lockgraph_ns, rules_ns) =
        rules::check_all_timed(&files2, Some(fake_clock));
    let fmt = |fs: &[ros_lint::Finding]| -> Vec<String> {
        fs.iter().map(|f| format!("{}:{}:{}", f.rule, f.file, f.line)).collect()
    };
    assert_eq!(fmt(&plain), fmt(&timed), "timing must not change the verdict");
    // The fake clock advances 7 per read, so each pass measures > 0.
    assert!(callgraph_ns > 0 && lockgraph_ns > 0 && rules_ns > 0);
    // Without a clock, timings are zero (the engine never reads the
    // OS clock itself).
    let (_, cg0, lg0, r0) = rules::check_all_timed(&files, None);
    assert_eq!((cg0, lg0, r0), (0, 0, 0));
}
