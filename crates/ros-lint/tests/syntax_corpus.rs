//! Golden corpus + property tests for the ros-lint syntax layer.
//!
//! Mirrors `lexer_corpus.rs` one level up the stack: where that file
//! proves the lexer is total and lossless, this one proves the
//! structural pass built on top of it — [`ros_lint::syntax`]'s brace
//! tree and call-site extraction, [`ros_lint::scan`]'s fn-body spans,
//! and [`ros_lint::callgraph`]'s hot-path propagation — recovers
//! structure without dropping or double-counting tokens:
//!
//! 1. A golden corpus of brace shapes (strings/chars/comments holding
//!    braces, stray closers, unclosed groups) with pinned tree shapes.
//! 2. A proptest property over randomly assembled fn bodies: scanning
//!    never panics, every body span is brace-matched and disjoint,
//!    and the brace tree's roots coincide with the scanned bodies.

use proptest::prelude::*;
use ros_lint::callgraph::{self, CallGraph, FnNode, HOT_PATH_MARKER};
use ros_lint::scan::ItemKind;
use ros_lint::syntax::{
    brace_tree, calls_in, hash_bindings, hash_fields, skip_turbofish, BraceNode, CallSite,
    CodeView, HASH_TYPES,
};
use ros_lint::{FileAnalysis, FileRole};

fn fa(rel: &str, src: &str) -> FileAnalysis {
    let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
    FileAnalysis::new(rel.to_string(), crate_name, FileRole::Library, src.to_string())
}

/// Serializes a brace forest as nested parens: `(()())` is one root
/// with two children.
fn shape(nodes: &[BraceNode]) -> String {
    let mut s = String::new();
    for n in nodes {
        s.push('(');
        s.push_str(&shape(&n.children));
        s.push(')');
    }
    s
}

/// The golden corpus: `(fragment, pinned tree shape)`. These are the
/// shapes that defeat naive bracket counters.
const GOLDEN: &[(&str, &str)] = &[
    ("fn a() {}", "()"),
    ("fn a() { if x { y(); } else { z(); } }", "(()())"),
    // A struct body is a root too; sibling roots stay in order.
    ("struct S { a: T }\nfn b() { { {} } }", "()((()))"),
    // Braces inside strings, chars, and comments are not structure.
    ("fn a() { let s = \"{ not } real\"; let c = '{'; /* { */ }", "()"),
    // Stray closers are recovered, not matched against nothing.
    ("} } fn a() {}", "()"),
    // Unclosed groups fold into their parent and span to EOF.
    ("fn a() { {", "(())"),
    ("match e { A => {} B => { f() } }", "(()())"),
];

#[test]
fn golden_brace_shapes_are_pinned() {
    for (src, want) in GOLDEN {
        let f = fa("crates/x/src/lib.rs", src);
        let view = CodeView::new(&f);
        assert_eq!(&shape(&brace_tree(&view)), want, "shape drift for {src:?}");
    }
}

#[test]
fn subtree_size_counts_every_node() {
    let f = fa("crates/x/src/lib.rs", "fn a() { if x { y(); } else { z(); } }");
    let view = CodeView::new(&f);
    let roots = brace_tree(&view);
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].subtree_size(), 3); // body + both branch blocks
}

#[test]
fn code_view_accessors_round_trip() {
    let src = "fn a() { b(); }\n#[cfg(test)]\nmod tests { fn t() { c(); } }\n";
    let f = fa("crates/x/src/lib.rs", src);
    let view = CodeView::new(&f);
    assert!(!view.is_empty());
    assert!(view.is_ident(0, "fn"));
    assert!(view.ident_in(1, &["a", "z"]));
    assert!(view.is_punct(2, "("));
    assert_eq!(view.text(1), "a");
    assert_eq!(view.line(0), 1);
    // tok_idx / ci_at_or_after are inverses on code tokens.
    for ci in 0..view.len() {
        assert_eq!(view.ci_at_or_after(view.tok_idx(ci)), ci);
    }
    // Library code is not test code; the cfg(test) mod is.
    assert!(!view.in_test(0));
    let t_ci = (0..view.len()).find(|&ci| view.is_ident(ci, "c")).unwrap();
    assert!(view.in_test(t_ci));
    // The view keeps its backing analysis reachable for rules.
    assert_eq!(view.fa.rel, "crates/x/src/lib.rs");
    assert_eq!(view.kind(0), Some(ros_lint::lexer::TokenKind::Ident));
}

#[test]
fn call_sites_cover_every_shape() {
    let src = "fn top() {\n    helper();\n    Vec::<u8>::new();\n    recv.decode::<u8>();\n    shaping::profile(2);\n    if cond { }\n}\n";
    let f = fa("crates/x/src/lib.rs", src);
    let view = CodeView::new(&f);
    let calls: Vec<CallSite> = calls_in(&view, 0, view.len());
    let names: Vec<(&str, Option<&str>, bool)> = calls
        .iter()
        .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.method))
        .collect();
    assert_eq!(
        names,
        vec![
            ("helper", None, false),
            ("new", Some("Vec"), false),
            ("decode", None, true),
            ("profile", Some("shaping"), false),
        ]
    );
    // Lines and code indices point at the callee name itself.
    assert_eq!(calls[0].line, 2);
    assert!(view.is_ident(calls[0].ci, "helper"));
}

#[test]
fn turbofish_skipping_lands_on_the_call_paren() {
    let src = "fn a() { m::<Vec<u8>>(1); }";
    let f = fa("crates/x/src/lib.rs", src);
    let view = CodeView::new(&f);
    let m = (0..view.len()).find(|&ci| view.is_ident(ci, "m")).unwrap();
    let after = skip_turbofish(&view, m + 1);
    assert!(view.is_punct(after, "("), "landed on {:?}", view.text(after));
    // No turbofish: the index is returned unchanged.
    assert_eq!(skip_turbofish(&view, m), m);
}

#[test]
fn hash_collections_are_watched_by_name() {
    assert!(HASH_TYPES.contains(&"HashMap") && HASH_TYPES.contains(&"HashSet"));
    let src = "struct S { cache: HashMap<u32, u32> }\n\
               fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    let s = HashSet::new();\n    let v = Vec::new();\n}\n";
    let f = fa("crates/x/src/lib.rs", src);
    let view = CodeView::new(&f);
    let bound = hash_bindings(&view, 0, view.len());
    assert!(bound.contains("m") && bound.contains("s"));
    assert!(!bound.contains("v"));
    let fields = hash_fields(&view);
    assert!(fields.contains("cache"));
}

#[test]
fn call_graph_marks_and_witnesses_hot_paths() {
    assert_eq!(HOT_PATH_MARKER, "lint: hot-path");
    let a = fa(
        "crates/core/src/a.rs",
        "// lint: hot-path\npub fn entry() { mid(); }\npub fn mid() { ros_dsp::leaf(1); }\n",
    );
    let b = fa("crates/ros-dsp/src/b.rs", "pub fn leaf(x: u32) {}\npub fn cold() {}\n");
    let g: CallGraph = callgraph::build(&[a, b]);
    assert_eq!(g.nodes.len(), g.edges.len());
    let idx = |name: &str| g.nodes.iter().position(|n| n.name == name).unwrap();
    for name in ["entry", "mid", "leaf"] {
        let w: &FnNode = g.hot_witness(idx(name)).expect(name);
        assert_eq!(w.qualified_name(), "entry");
        assert!(w.hot_entry);
    }
    assert!(g.hot_from[idx("cold")].is_none());
    assert!(g.hot_witness(idx("cold")).is_none());
}

/// Body-statement fragments the property test assembles fns from.
/// Each is brace-balanced on its own; several hide braces inside
/// strings, chars, and comments.
const BODY_FRAGMENTS: &[&str] = &[
    "x();",
    "let a = 1;",
    "{ inner(); }",
    "if c { y(); } else { z(); }",
    "let s = \"{ brace }\";",
    "let c = '{';",
    "// { comment\n",
    "/* } */",
    "m::<u8>(q);",
    "v.push(w);",
    "match e { _ => {} }",
    "vec![1, 2];",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random fn soup: body extraction never panics, spans are
    /// brace-matched and mutually disjoint, the signature ends where
    /// the body begins, and the brace tree's roots are exactly the
    /// scanned bodies.
    #[test]
    fn body_extraction_is_span_lossless(
        fns in prop::collection::vec(
            prop::collection::vec(0usize..BODY_FRAGMENTS.len(), 0..6),
            1..6,
        )
    ) {
        let mut src = String::new();
        for (i, picks) in fns.iter().enumerate() {
            src.push_str(&format!("fn f{i}() {{\n"));
            for p in picks {
                src.push_str("    ");
                src.push_str(BODY_FRAGMENTS[*p]);
                src.push('\n');
            }
            src.push_str("}\n");
        }
        let f = fa("crates/x/src/lib.rs", &src);

        // Every generated fn is recovered, in order, with a body.
        let items: Vec<_> = f
            .facts
            .items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn)
            .collect();
        prop_assert_eq!(items.len(), fns.len());
        let mut prev_end = 0usize;
        for (i, it) in items.iter().enumerate() {
            prop_assert_eq!(&it.name, &format!("f{i}"));
            let (s, e) = it.body.expect("fn body span");
            // Braces included: the span opens on `{` and closes on `}`.
            prop_assert!(s < e && e <= f.tokens.len());
            prop_assert_eq!(f.tokens[s].text(&src), "{");
            prop_assert_eq!(f.tokens[e - 1].text(&src), "}");
            // The signature runs right up to the body.
            let (ss, se) = it.sig.expect("fn sig span");
            prop_assert!(ss < se && se <= s);
            // Bodies are disjoint and in source order.
            prop_assert!(s >= prev_end);
            prev_end = e;
            // Structural braces balance inside the span and never go
            // negative — string/char/comment braces are already inert
            // because the scanner works on lexed tokens.
            let view = CodeView::new(&f);
            let (cs, ce) = (view.ci_at_or_after(s), view.ci_at_or_after(e));
            let mut depth: isize = 0;
            for ci in cs..ce {
                if view.is_punct(ci, "{") {
                    depth += 1;
                } else if view.is_punct(ci, "}") {
                    depth -= 1;
                    prop_assert!(depth >= 0 || ci == ce - 1);
                }
            }
            prop_assert_eq!(depth, 0);
        }

        // The brace forest's roots are exactly the fn bodies.
        let view = CodeView::new(&f);
        let roots = brace_tree(&view);
        prop_assert_eq!(roots.len(), items.len());
        for (root, it) in roots.iter().zip(&items) {
            prop_assert_eq!(view.tok_idx(root.open), it.body.unwrap().0);
            prop_assert_eq!(view.tok_idx(root.close), it.body.unwrap().1 - 1);
        }

        // Call extraction is total on the soup (no panics, indices in
        // range, every callee really is an ident at its code index).
        for c in calls_in(&view, 0, view.len()) {
            prop_assert!(view.is_ident(c.ci, &c.name));
        }
    }
}
