//! The injected-clock boundary: the one place that reads the OS clock.
//!
//! Every span duration in the workspace flows through [`now_ns`].
//! Library code never touches `std::time` directly — the `no-wallclock`
//! lint rule enforces it, and this file is the rule's sole exemption
//! ([`ros-lint`]'s `CLOCK_MODULE`). The default clock is *null*: it
//! reads 0 until a binary edge installs the monotonic clock, which is
//! what keeps determinism tests clock-free and golden traces bit-stable
//! (`dur_ns: 0` everywhere).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Clock kind: 0 = null (always reads 0), 1 = monotonic.
static CLOCK: AtomicU8 = AtomicU8::new(0);

/// Epoch of the monotonic clock (set once on first install).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Installs the real monotonic clock (span durations become wall time).
///
/// Only "edges" — binaries like `bench`, never library code — should
/// call this (normally via [`crate::init_from_env`]); determinism tests
/// rely on the default null clock so traces carry `dur_ns: 0` and stay
/// bit-stable.
pub fn install_monotonic_clock() {
    let _ = EPOCH.get_or_init(Instant::now);
    CLOCK.store(1, Ordering::Relaxed);
}

/// Reinstalls the null clock (span durations read 0).
pub fn install_null_clock() {
    CLOCK.store(0, Ordering::Relaxed);
}

/// Nanoseconds since the installed epoch (0 under the null clock).
pub fn now_ns() -> u64 {
    if CLOCK.load(Ordering::Relaxed) == 0 {
        return 0;
    }
    match EPOCH.get() {
        // Truncation after ~584 years of uptime is acceptable.
        Some(epoch) => epoch.elapsed().as_nanos() as u64, // lint: allow-cast(monotonic ns fit u64)
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn null_clock_reads_zero() {
        crate::clock::install_null_clock();
        assert_eq!(crate::clock::now_ns(), 0);
    }

    #[test]
    fn monotonic_clock_advances_and_null_reinstalls() {
        crate::clock::install_monotonic_clock();
        let a = crate::clock::now_ns();
        let b = crate::clock::now_ns();
        assert!(b >= a, "monotonic clock must not run backwards");
        crate::clock::install_null_clock();
        assert_eq!(crate::clock::now_ns(), 0);
    }
}
