//! Minimal JSON value formatting for ndjson lines.
//!
//! The workspace carries no serde; events are flat objects of scalar
//! fields, so a tiny escaping + number formatter is all that is
//! needed. Floats print via `Display` in the round-trip range and via
//! `{:e}` outside it (both are valid JSON numbers); non-finite floats
//! become `null` so every emitted line stays parseable.

use std::fmt::Write as _;

/// One scalar field value in an ndjson event.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values serialize as `null`).
    F64(f64),
    /// String (escaped on output).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl Value<'_> {
    /// Appends this value's JSON representation to `out`.
    pub(crate) fn push_json(&self, out: &mut String) {
        match *self {
            Value::U64(v) => push_u64(out, v),
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => push_f64(out, v),
            Value::Str(s) => {
                out.push('"');
                push_escaped(out, s);
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64) // lint: allow-cast(usize widens losslessly to u64)
    }
}

impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

/// Appends `s` with JSON string escaping (quotes, backslash, control
/// characters).
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: allow-cast(char-to-u32 is the lossless codepoint value)
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32); // lint: allow-cast(codepoint)
            }
            c => out.push(c),
        }
    }
}

/// Appends an unsigned integer.
pub(crate) fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Appends a float as a valid JSON number (`null` when non-finite).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    // lint: allow-float-eq(exact zero selects the short "0" spelling)
    } else if v == 0.0 {
        out.push('0');
    } else if v.abs() >= 1e-4 && v.abs() < 1e16 {
        let _ = write!(out, "{v}");
    } else {
        // Scientific notation keeps extreme magnitudes compact and is
        // still a valid JSON number.
        let _ = write!(out, "{v:e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(v: Value<'_>) -> String {
        let mut s = String::new();
        v.push_json(&mut s);
        s
    }

    #[test]
    fn scalars_format_as_json() {
        assert_eq!(fmt(Value::U64(7)), "7");
        assert_eq!(fmt(Value::I64(-3)), "-3");
        assert_eq!(fmt(Value::Bool(true)), "true");
        assert_eq!(fmt(Value::Str("a\"b\\c")), "\"a\\\"b\\\\c\"");
        assert_eq!(fmt(Value::Str("line\nbreak")), "\"line\\nbreak\"");
    }

    #[test]
    fn floats_stay_parseable() {
        assert_eq!(fmt(Value::F64(0.0)), "0");
        assert_eq!(fmt(Value::F64(1.5)), "1.5");
        assert_eq!(fmt(Value::F64(-53.25)), "-53.25");
        assert_eq!(fmt(Value::F64(f64::NAN)), "null");
        assert_eq!(fmt(Value::F64(f64::INFINITY)), "null");
        // Extremes use exponent form, which JSON accepts.
        assert!(fmt(Value::F64(1e-300)).contains('e'));
        assert!(fmt(Value::F64(4.2e21)).contains('e'));
    }

    #[test]
    fn from_impls_cover_common_types() {
        assert_eq!(fmt(Value::from(3usize)), "3");
        assert_eq!(fmt(Value::from(3u32)), "3");
        assert_eq!(fmt(Value::from(-1i64)), "-1");
        assert_eq!(fmt(Value::from(2.5f64)), "2.5");
        assert_eq!(fmt(Value::from("x")), "\"x\"");
        assert_eq!(fmt(Value::from(false)), "false");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(fmt(Value::Str("\u{1}")), "\"\\u0001\"");
    }
}
