//! Pipeline observability for RoS: spans, metrics, ndjson export.
//!
//! The reader pipeline (point cloud → DBSCAN → discrimination →
//! spotlight → FFT → OOK → SNR) is deterministic and parallel, but
//! without telemetry it is a black box: when a drive-by decodes wrong
//! bits there is no record of what the CFAR saw, how the clusters
//! scored, or where the slot amplitudes landed. This crate is the
//! single diagnostic channel for the whole workspace:
//!
//! * **Spans** ([`span`]) time a pipeline stage. Wall time comes from a
//!   monotonic clock that is *injected at the edges* — binaries call
//!   [`init_from_env`], which installs it; library code never reads the
//!   OS clock on its own, so determinism tests stay clock-free (an
//!   uninstalled clock reads 0 and traces stay bit-stable).
//! * **Metrics** ([`count`], [`gauge`], [`hist`]) aggregate counters,
//!   gauges, and histograms in a registry with a *fixed registration
//!   order* ([`names::ALL`]), so two runs always export metrics in the
//!   same sequence regardless of which stage touched them first.
//! * **Events** ([`event`], [`event_detail`]) emit one ndjson object
//!   per line to the configured sink (stderr, `ROS_OBS_FILE`, or an
//!   in-memory buffer for tests and bench embedding).
//!
//! Everything is gated by the process-wide [`Level`]:
//!
//! | `ROS_OBS` | level              | behaviour                                  |
//! |-----------|--------------------|--------------------------------------------|
//! | unset / 0 | [`Level::Off`]     | every call is a no-op (no allocation)      |
//! | 1         | [`Level::Summary`] | spans, per-stage events, metrics           |
//! | 2         | [`Level::Detail`]  | + per-frame / per-slot / per-cluster trace |
//!
//! The environment variable is only read by [`init_from_env`] — plain
//! library/test processes that never call it stay [`Level::Off`] even
//! with `ROS_OBS` exported, which keeps `cargo test` hermetic.
//!
//! The disabled path is zero-cost: one relaxed atomic load, no locks,
//! no allocation (asserted by the `zero_alloc` integration test). The
//! crate is std-only and dependency-free so every pipeline crate can
//! depend on it without cycles.

pub mod clock;
mod json;
mod metrics;
pub mod names;
mod sink;

pub use clock::{install_monotonic_clock, install_null_clock};
pub use json::Value;
pub use metrics::{count, gauge, hist, hist_quantile, metrics_json, metrics_json_touched, reset_metrics};
pub use sink::install_memory_sink;

use clock::now_ns;
use std::sync::atomic::{AtomicU8, Ordering};

/// Observability level, ordered: `Off < Summary < Detail`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Everything disabled; every call is a cheap no-op.
    Off,
    /// Spans, stage-level events, and metrics.
    Summary,
    /// Additionally per-frame / per-slot / per-cluster detail events.
    Detail,
}

impl Level {
    /// Parses a `ROS_OBS` value. Unrecognized strings mean [`Level::Off`].
    pub fn parse(s: &str) -> Level {
        match s.trim() {
            "1" | "summary" | "on" => Level::Summary,
            "2" | "detail" | "trace" => Level::Detail,
            _ => Level::Off,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Summary,
            2 => Level::Detail,
            _ => Level::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Level::Off => 0,
            Level::Summary => 1,
            Level::Detail => 2,
        }
    }
}

/// The process-wide level; 0 until somebody opts in.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// The current observability level (one relaxed atomic load).
#[inline]
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// True when summary-level telemetry is on.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 1
}

/// True when detail-level (per-frame/per-slot) telemetry is on.
#[inline]
pub fn detail() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 2
}

/// Sets the process-wide level programmatically (tests, bench).
pub fn set_level(l: Level) {
    LEVEL.store(l.as_u8(), Ordering::Relaxed);
}

/// Reads `ROS_OBS` / `ROS_OBS_FILE` and configures level, clock, and
/// sink accordingly. Call once from binary entry points.
///
/// With `ROS_OBS` unset (or 0) this is a no-op and the process stays
/// [`Level::Off`]. Otherwise the monotonic clock is installed and the
/// ndjson sink goes to `ROS_OBS_FILE` (falling back to stderr if the
/// file cannot be created, and by default).
pub fn init_from_env() {
    let lvl = std::env::var("ROS_OBS").map_or(Level::Off, |v| Level::parse(&v));
    if lvl == Level::Off {
        return;
    }
    install_monotonic_clock();
    if let Ok(path) = std::env::var("ROS_OBS_FILE") {
        if !path.is_empty() {
            sink::install_file_sink(&path);
        }
    }
    set_level(lvl);
}

/// A stage-timing guard: emits `{"ev":"span","stage":...,"dur_ns":...}`
/// on drop and records the duration in the `time.<stage>` histogram.
///
/// Inert (no allocation, no clock read) when the level is
/// [`Level::Off`] at construction.
#[must_use = "a span measures the scope it is bound to; bind it to a `_span` local"]
// lint: allow-dead-pub(RAII guard returned by span(); callers never spell the name)
pub struct Span {
    stage: &'static str,
    start_ns: u64,
    live: bool,
}

/// Opens a span over the current scope.
pub fn span(stage: &'static str) -> Span {
    if !enabled() {
        return Span {
            stage,
            start_ns: 0,
            live: false,
        };
    }
    Span {
        stage,
        start_ns: now_ns(),
        live: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        metrics::hist_time(self.stage, dur);
        let mut line = String::with_capacity(64);
        line.push_str("{\"ev\":\"span\",\"stage\":\"");
        json::push_escaped(&mut line, self.stage);
        line.push_str("\",\"dur_ns\":");
        json::push_u64(&mut line, dur);
        line.push('}');
        sink::write_line(&line);
    }
}

/// Emits one ndjson event at summary level:
/// `{"ev":"<ev>","<k>":<v>,...}`. No-op below [`Level::Summary`].
pub fn event(ev: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    emit(ev, fields);
}

/// Emits one ndjson event at detail level. No-op below [`Level::Detail`].
pub fn event_detail(ev: &str, fields: &[(&str, Value<'_>)]) {
    if !detail() {
        return;
    }
    emit(ev, fields);
}

fn emit(ev: &str, fields: &[(&str, Value<'_>)]) {
    let mut line = String::with_capacity(64 + fields.len() * 16);
    line.push_str("{\"ev\":\"");
    json::push_escaped(&mut line, ev);
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        json::push_escaped(&mut line, k);
        line.push_str("\":");
        v.push_json(&mut line);
    }
    line.push('}');
    sink::write_line(&line);
}

/// Exports every registered metric as one `{"ev":"metric",...}` line
/// (in registration order) and flushes the sink.
pub fn flush() {
    if enabled() {
        for line in metrics::metric_lines() {
            sink::write_line(&line);
        }
    }
    sink::flush();
}

/// A telemetry capture taken by [`capture_scope`].
#[derive(Clone, Debug)]
// lint: allow-dead-pub(returned by capture_scope; callers destructure, never name it)
pub struct CaptureReport {
    /// Every ndjson line emitted inside the scope, in order.
    pub lines: Vec<String>,
    /// JSON array of the metrics touched inside the scope, in fixed
    /// registration order.
    pub metrics: String,
}

/// Runs `f` with telemetry captured into memory, restoring the prior
/// level and sink afterwards (even though `f` may have emitted through
/// them). Metrics are reset on entry and on exit, so the report holds
/// exactly the scope's activity.
///
/// Used by `bench perf` to embed a telemetry summary next to timing
/// rows without disturbing a `ROS_OBS` session the user may have
/// configured.
pub fn capture_scope<R>(lvl: Level, f: impl FnOnce() -> R) -> (R, CaptureReport) {
    let prior_level = level();
    let prior_sink = sink::take();
    let buffer = sink::install_memory_sink();
    metrics::reset_metrics();
    set_level(lvl);
    let result = f();
    set_level(prior_level);
    let metrics_snapshot = metrics::metrics_json_touched();
    metrics::reset_metrics();
    let lines = buffer
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    sink::restore(prior_sink);
    (
        result,
        CaptureReport {
            lines,
            metrics: metrics_snapshot,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("1"), Level::Summary);
        assert_eq!(Level::parse("2"), Level::Detail);
        assert_eq!(Level::parse("trace"), Level::Detail);
        assert_eq!(Level::parse("summary"), Level::Summary);
        assert_eq!(Level::parse("0"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
        assert_eq!(Level::parse("bogus"), Level::Off);
        assert!(Level::Off < Level::Summary && Level::Summary < Level::Detail);
    }

    #[test]
    fn level_round_trips_through_u8() {
        for l in [Level::Off, Level::Summary, Level::Detail] {
            assert_eq!(Level::from_u8(l.as_u8()), l);
        }
    }

}
