//! Counters, gauges, and histograms with a fixed registration order.
//!
//! The registry is a mutex-guarded vector pre-populated from
//! [`crate::names::ALL`], so export order is deterministic regardless
//! of which pipeline stage touches its metric first (or from which
//! worker thread). Unknown names are appended after the fixed block.
//!
//! Updates take the registry lock briefly; the disabled path
//! ([`crate::enabled`] false) returns before ever reaching the lock.

use crate::json;
use crate::names::{Kind, ALL};
use std::sync::Mutex;

/// Quantile sketch resolution: 4 sub-buckets per power of two keeps
/// the relative estimation error under ~12.5% per sample, which is
/// plenty for p50/p99 latency reporting.
const SUB_PER_OCTAVE: usize = 4;
/// Octaves covered by the sketch; 2^64 ns ≈ 585 years, so every
/// realistic latency/value lands inside the table.
const N_OCTAVES: usize = 64;
/// Total sketch buckets per histogram.
const N_BUCKETS: usize = N_OCTAVES * SUB_PER_OCTAVE;

/// The sketch bucket a sample falls into. Values `<= 1` (including
/// zero, negatives, and NaN) all collapse into bucket 0 — quantile
/// answers are clamped to the exact observed min/max anyway.
fn bucket_index(v: f64) -> usize {
    if !(v > 1.0) {
        return 0;
    }
    let octave = (v.log2().floor() as usize).min(N_OCTAVES - 1); // lint: allow-cast(floor of log2 of v>1 is a small non-negative integer)
    let base = (2.0f64).powi(octave as i32); // lint: allow-cast(octave < 64 fits i32)
    let frac = (v / base - 1.0).clamp(0.0, 1.0 - f64::EPSILON);
    let sub = (frac * SUB_PER_OCTAVE as f64) as usize; // lint: allow-cast(frac in [0,1) scaled by 4 truncates to 0..=3)
    octave * SUB_PER_OCTAVE + sub.min(SUB_PER_OCTAVE - 1)
}

/// Representative value (geometric bucket midpoint) of sketch bucket
/// `idx`; callers clamp the answer into the observed `[min, max]`.
fn bucket_value(idx: usize) -> f64 {
    let octave = idx / SUB_PER_OCTAVE;
    let sub = idx % SUB_PER_OCTAVE;
    let base = (2.0f64).powi(octave as i32); // lint: allow-cast(octave < 64 fits i32)
    base * (1.0 + (sub as f64 + 0.5) / SUB_PER_OCTAVE as f64) // lint: allow-cast(sub-bucket index 0..=3 is exact in f64)
}

/// One registered metric with its aggregate state.
struct Metric {
    name: String,
    kind: Kind,
    /// Counter value / histogram sample count.
    count: u64,
    /// Gauge value / histogram sum.
    sum: f64,
    min: f64,
    max: f64,
    /// Whether anything has written to it since the last reset.
    touched: bool,
    /// Log₂-bucketed sample counts for [`hist_quantile`]; allocated on
    /// a histogram's first sample, absent for counters/gauges. Not
    /// exported — the JSON/ndjson formats stay count/sum/min/max.
    buckets: Option<Box<[u64; N_BUCKETS]>>,
}

impl Metric {
    fn new(name: &str, kind: Kind) -> Self {
        Metric {
            name: name.to_string(),
            kind,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            touched: false,
            buckets: None,
        }
    }
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

fn with_metric(name: &str, kind: Kind, f: impl FnOnce(&mut Metric)) {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if reg.is_empty() {
        reg.extend(ALL.iter().map(|(n, k)| Metric::new(n, *k)));
    }
    let idx = match reg.iter().position(|m| m.name == name) {
        Some(i) => i,
        None => {
            reg.push(Metric::new(name, kind));
            reg.len() - 1
        }
    };
    f(&mut reg[idx]);
}

/// Adds `n` to a counter. No-op when telemetry is off.
pub fn count(name: &str, n: usize) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Counter, |m| {
        m.count += n as u64; // lint: allow-cast(usize widens losslessly to u64)
        m.touched = true;
    });
}

/// Sets a gauge to `v`. No-op when telemetry is off.
pub fn gauge(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Gauge, |m| {
        m.sum = v;
        m.touched = true;
    });
}

/// Records one sample into a histogram. No-op when telemetry is off.
pub fn hist(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Histogram, |m| {
        m.count += 1;
        m.sum += v;
        m.min = m.min.min(v);
        m.max = m.max.max(v);
        m.touched = true;
        m.buckets.get_or_insert_with(|| Box::new([0u64; N_BUCKETS]))[bucket_index(v)] += 1;
    });
}

/// Estimated `q`-quantile (`q` in `[0, 1]`, clamped) of histogram
/// `name` from its log₂-bucketed sketch, or `None` when the metric is
/// unknown, not a histogram, or has no samples since the last reset.
///
/// The estimate is the geometric midpoint of the bucket holding the
/// rank-`⌈q·count⌉` sample, clamped into the exact observed
/// `[min, max]` — so `hist_quantile(n, 0.0)` is the true minimum,
/// `hist_quantile(n, 1.0)` the true maximum, and interior quantiles
/// carry at most one sub-bucket (~12.5%) of relative error. This is
/// how `bench serve` turns `serve.decode_latency_ns` into p50/p99.
pub fn hist_quantile(name: &str, q: f64) -> Option<f64> {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let m = reg.iter().find(|m| m.name == name)?;
    if m.kind != Kind::Histogram || m.count == 0 {
        return None;
    }
    let buckets = m.buckets.as_ref()?;
    let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
    // The extreme quantiles are tracked exactly; only interior ranks
    // need the sketch.
    if q <= 0.0 {
        return Some(m.min);
    }
    if q >= 1.0 {
        return Some(m.max);
    }
    let rank = ((q * m.count as f64).ceil() as u64).max(1); // lint: allow-cast(count and a clamped ceil both fit u64 exactly at realistic sample counts)
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return Some(bucket_value(i).clamp(m.min, m.max));
        }
    }
    Some(m.max)
}

/// Records a span duration (ns) into the `time.<stage>` histogram.
pub(crate) fn hist_time(stage: &str, dur_ns: u64) {
    let mut name = String::with_capacity(5 + stage.len());
    name.push_str("time.");
    name.push_str(stage);
    // Precision loss above 2^53 ns (~104 days per span) is acceptable.
    hist(&name, dur_ns as f64); // lint: allow-cast(span durations are far below 2^53)
}

fn metric_json_body(m: &Metric, out: &mut String) {
    out.push_str("\"name\":\"");
    json::push_escaped(out, &m.name);
    out.push_str("\",\"kind\":\"");
    out.push_str(match m.kind {
        Kind::Counter => "counter",
        Kind::Gauge => "gauge",
        Kind::Histogram => "histogram",
    });
    out.push('"');
    match m.kind {
        Kind::Counter => {
            out.push_str(",\"value\":");
            json::push_u64(out, m.count);
        }
        Kind::Gauge => {
            out.push_str(",\"value\":");
            json::push_f64(out, if m.touched { m.sum } else { 0.0 });
        }
        Kind::Histogram => {
            out.push_str(",\"count\":");
            json::push_u64(out, m.count);
            out.push_str(",\"sum\":");
            json::push_f64(out, m.sum);
            if m.count > 0 {
                out.push_str(",\"min\":");
                json::push_f64(out, m.min);
                out.push_str(",\"max\":");
                json::push_f64(out, m.max);
            }
        }
    }
}

fn snapshot(only_touched: bool) -> String {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if reg.is_empty() {
        reg.extend(ALL.iter().map(|(n, k)| Metric::new(n, *k)));
    }
    let mut out = String::from("[");
    let mut first = true;
    for m in reg.iter() {
        if only_touched && !m.touched {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        metric_json_body(m, &mut out);
        out.push('}');
    }
    out.push(']');
    out
}

/// JSON array of every registered metric, in fixed registration order.
pub fn metrics_json() -> String {
    snapshot(false)
}

/// Like [`metrics_json`] but only metrics written since the last
/// [`reset_metrics`] — what `bench perf` embeds per timed path.
pub fn metrics_json_touched() -> String {
    snapshot(true)
}

/// One `{"ev":"metric",...}` ndjson line per touched metric, in
/// registration order (exported by [`crate::flush`]).
pub(crate) fn metric_lines() -> Vec<String> {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    reg.iter()
        .filter(|m| m.touched)
        .map(|m| {
            let mut line = String::from("{\"ev\":\"metric\",");
            metric_json_body(m, &mut line);
            line.push('}');
            line
        })
        .collect()
}

/// Zeroes every metric's state. Registration (and therefore export
/// order) is preserved, including dynamically added names.
pub fn reset_metrics() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    for m in reg.iter_mut() {
        m.count = 0;
        m.sum = 0.0;
        m.min = f64::INFINITY;
        m.max = f64::NEG_INFINITY;
        m.touched = false;
        if let Some(b) = m.buckets.as_mut() {
            b.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the unit tests in this module; they share the global
    /// registry and level.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Summary);
        reset_metrics();
        count("decode.attempts", 2);
        count("decode.attempts", 3);
        gauge("reader.cloud_points", 41.0);
        hist("decode.snr_db", 10.0);
        hist("decode.snr_db", 20.0);
        let json = metrics_json_touched();
        assert!(json.contains("\"name\":\"decode.attempts\",\"kind\":\"counter\",\"value\":5"));
        assert!(json.contains("\"name\":\"reader.cloud_points\",\"kind\":\"gauge\",\"value\":41"));
        assert!(json.contains(
            "\"name\":\"decode.snr_db\",\"kind\":\"histogram\",\"count\":2,\"sum\":30,\"min\":10,\"max\":20"
        ));
        crate::set_level(crate::Level::Off);
        reset_metrics();
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Off);
        reset_metrics();
        count("decode.attempts", 7);
        hist("decode.snr_db", 1.0);
        crate::set_level(crate::Level::Summary);
        assert_eq!(metrics_json_touched(), "[]");
        crate::set_level(crate::Level::Off);
    }

    #[test]
    fn hist_quantile_brackets_true_quantiles() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Summary);
        reset_metrics();
        // 1..=1000 µs in ns: true p50 = 500_000, true p99 = 990_000.
        for i in 1..=1000u32 {
            hist("serve.decode_latency_ns", f64::from(i) * 1000.0);
        }
        let p0 = hist_quantile("serve.decode_latency_ns", 0.0).unwrap();
        let p50 = hist_quantile("serve.decode_latency_ns", 0.5).unwrap();
        let p99 = hist_quantile("serve.decode_latency_ns", 0.99).unwrap();
        let p100 = hist_quantile("serve.decode_latency_ns", 1.0).unwrap();
        assert_eq!(p0, 1000.0, "q=0 is the exact min");
        assert_eq!(p100, 1_000_000.0, "q=1 is the exact max");
        assert!(p50 >= 1000.0 && p50 <= p99 && p99 <= p100, "monotone: {p50} {p99}");
        // One sub-bucket of a log2/4 sketch is at most 2^(1/4) ≈ 1.19×
        // wide; allow a generous 25% band around the true values.
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.25, "p50 = {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.25, "p99 = {p99}");
        crate::set_level(crate::Level::Off);
        reset_metrics();
    }

    #[test]
    fn hist_quantile_edge_cases() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Summary);
        reset_metrics();
        // Unknown name / wrong kind / empty histogram all yield None.
        assert_eq!(hist_quantile("no.such.metric", 0.5), None);
        count("decode.attempts", 1);
        assert_eq!(hist_quantile("decode.attempts", 0.5), None);
        assert_eq!(hist_quantile("decode.snr_db", 0.5), None);
        // Non-positive samples collapse into bucket 0 but min/max
        // clamping keeps the answers exact for a constant stream.
        hist("decode.snr_db", 0.0);
        hist("decode.snr_db", 0.0);
        assert_eq!(hist_quantile("decode.snr_db", 0.5), Some(0.0));
        // Out-of-range q is clamped, NaN falls back to the median.
        assert_eq!(hist_quantile("decode.snr_db", -3.0), Some(0.0));
        assert_eq!(hist_quantile("decode.snr_db", 7.0), Some(0.0));
        assert_eq!(hist_quantile("decode.snr_db", f64::NAN), Some(0.0));
        // Reset drops the sketch contents along with the aggregates.
        reset_metrics();
        assert_eq!(hist_quantile("decode.snr_db", 0.5), None);
        crate::set_level(crate::Level::Off);
    }

    #[test]
    fn untouched_metrics_report_zero_state() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset_metrics();
        let json = metrics_json();
        // Histograms with no samples omit min/max (they are not finite).
        assert!(json.contains("\"name\":\"decode.snr_db\",\"kind\":\"histogram\",\"count\":0,\"sum\":0}"));
    }
}
