//! Counters, gauges, and histograms with a fixed registration order.
//!
//! The registry is a mutex-guarded vector pre-populated from
//! [`crate::names::ALL`], so export order is deterministic regardless
//! of which pipeline stage touches its metric first (or from which
//! worker thread). Unknown names are appended after the fixed block.
//!
//! Updates take the registry lock briefly; the disabled path
//! ([`crate::enabled`] false) returns before ever reaching the lock.

use crate::json;
use crate::names::{Kind, ALL};
use std::sync::Mutex;

/// One registered metric with its aggregate state.
struct Metric {
    name: String,
    kind: Kind,
    /// Counter value / histogram sample count.
    count: u64,
    /// Gauge value / histogram sum.
    sum: f64,
    min: f64,
    max: f64,
    /// Whether anything has written to it since the last reset.
    touched: bool,
}

impl Metric {
    fn new(name: &str, kind: Kind) -> Self {
        Metric {
            name: name.to_string(),
            kind,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            touched: false,
        }
    }
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

fn with_metric(name: &str, kind: Kind, f: impl FnOnce(&mut Metric)) {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if reg.is_empty() {
        reg.extend(ALL.iter().map(|(n, k)| Metric::new(n, *k)));
    }
    let idx = match reg.iter().position(|m| m.name == name) {
        Some(i) => i,
        None => {
            reg.push(Metric::new(name, kind));
            reg.len() - 1
        }
    };
    f(&mut reg[idx]);
}

/// Adds `n` to a counter. No-op when telemetry is off.
pub fn count(name: &str, n: usize) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Counter, |m| {
        m.count += n as u64; // lint: allow-cast(usize widens losslessly to u64)
        m.touched = true;
    });
}

/// Sets a gauge to `v`. No-op when telemetry is off.
pub fn gauge(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Gauge, |m| {
        m.sum = v;
        m.touched = true;
    });
}

/// Records one sample into a histogram. No-op when telemetry is off.
pub fn hist(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_metric(name, Kind::Histogram, |m| {
        m.count += 1;
        m.sum += v;
        m.min = m.min.min(v);
        m.max = m.max.max(v);
        m.touched = true;
    });
}

/// Records a span duration (ns) into the `time.<stage>` histogram.
pub(crate) fn hist_time(stage: &str, dur_ns: u64) {
    let mut name = String::with_capacity(5 + stage.len());
    name.push_str("time.");
    name.push_str(stage);
    // Precision loss above 2^53 ns (~104 days per span) is acceptable.
    hist(&name, dur_ns as f64); // lint: allow-cast(span durations are far below 2^53)
}

fn metric_json_body(m: &Metric, out: &mut String) {
    out.push_str("\"name\":\"");
    json::push_escaped(out, &m.name);
    out.push_str("\",\"kind\":\"");
    out.push_str(match m.kind {
        Kind::Counter => "counter",
        Kind::Gauge => "gauge",
        Kind::Histogram => "histogram",
    });
    out.push('"');
    match m.kind {
        Kind::Counter => {
            out.push_str(",\"value\":");
            json::push_u64(out, m.count);
        }
        Kind::Gauge => {
            out.push_str(",\"value\":");
            json::push_f64(out, if m.touched { m.sum } else { 0.0 });
        }
        Kind::Histogram => {
            out.push_str(",\"count\":");
            json::push_u64(out, m.count);
            out.push_str(",\"sum\":");
            json::push_f64(out, m.sum);
            if m.count > 0 {
                out.push_str(",\"min\":");
                json::push_f64(out, m.min);
                out.push_str(",\"max\":");
                json::push_f64(out, m.max);
            }
        }
    }
}

fn snapshot(only_touched: bool) -> String {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if reg.is_empty() {
        reg.extend(ALL.iter().map(|(n, k)| Metric::new(n, *k)));
    }
    let mut out = String::from("[");
    let mut first = true;
    for m in reg.iter() {
        if only_touched && !m.touched {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        metric_json_body(m, &mut out);
        out.push('}');
    }
    out.push(']');
    out
}

/// JSON array of every registered metric, in fixed registration order.
pub fn metrics_json() -> String {
    snapshot(false)
}

/// Like [`metrics_json`] but only metrics written since the last
/// [`reset_metrics`] — what `bench perf` embeds per timed path.
pub fn metrics_json_touched() -> String {
    snapshot(true)
}

/// One `{"ev":"metric",...}` ndjson line per touched metric, in
/// registration order (exported by [`crate::flush`]).
pub(crate) fn metric_lines() -> Vec<String> {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    reg.iter()
        .filter(|m| m.touched)
        .map(|m| {
            let mut line = String::from("{\"ev\":\"metric\",");
            metric_json_body(m, &mut line);
            line.push('}');
            line
        })
        .collect()
}

/// Zeroes every metric's state. Registration (and therefore export
/// order) is preserved, including dynamically added names.
pub fn reset_metrics() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    for m in reg.iter_mut() {
        m.count = 0;
        m.sum = 0.0;
        m.min = f64::INFINITY;
        m.max = f64::NEG_INFINITY;
        m.touched = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the unit tests in this module; they share the global
    /// registry and level.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Summary);
        reset_metrics();
        count("decode.attempts", 2);
        count("decode.attempts", 3);
        gauge("reader.cloud_points", 41.0);
        hist("decode.snr_db", 10.0);
        hist("decode.snr_db", 20.0);
        let json = metrics_json_touched();
        assert!(json.contains("\"name\":\"decode.attempts\",\"kind\":\"counter\",\"value\":5"));
        assert!(json.contains("\"name\":\"reader.cloud_points\",\"kind\":\"gauge\",\"value\":41"));
        assert!(json.contains(
            "\"name\":\"decode.snr_db\",\"kind\":\"histogram\",\"count\":2,\"sum\":30,\"min\":10,\"max\":20"
        ));
        crate::set_level(crate::Level::Off);
        reset_metrics();
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_level(crate::Level::Off);
        reset_metrics();
        count("decode.attempts", 7);
        hist("decode.snr_db", 1.0);
        crate::set_level(crate::Level::Summary);
        assert_eq!(metrics_json_touched(), "[]");
        crate::set_level(crate::Level::Off);
    }

    #[test]
    fn untouched_metrics_report_zero_state() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset_metrics();
        let json = metrics_json();
        // Histograms with no samples omit min/max (they are not finite).
        assert!(json.contains("\"name\":\"decode.snr_db\",\"kind\":\"histogram\",\"count\":0,\"sum\":0}"));
    }
}
