//! The fixed metric registration order.
//!
//! Every metric the pipeline emits is declared here, in the order it
//! appears in exports (`metrics_json`, the `flush` metric lines).
//! Pre-registering the full set at registry creation makes the export
//! order a property of this table — not of which stage happened to
//! touch its metric first, which would vary with configuration and
//! thread scheduling. Names not in this table still work; they are
//! appended after the fixed block in first-use order.
//!
//! Naming scheme: `<crate-or-stage>.<what>`, dB/meter suffixes spelled
//! out (`_db`, `_m2`). Span durations land in `time.<stage>`.

/// Metric kinds (mirrored by the registry's internal state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
// lint: allow-dead-pub(tuple component of ALL; consumed positionally)
pub enum Kind {
    /// Monotonic event count.
    Counter,
    /// Last-written value.
    Gauge,
    /// Count / sum / min / max aggregate.
    Histogram,
}

/// Every pipeline metric, in export order.
pub const ALL: &[(&str, Kind)] = &[
    // Radar front end.
    ("radar.frames_synthesized", Kind::Counter),
    ("radar.cfar_detections", Kind::Counter),
    ("radar.points_per_frame", Kind::Histogram),
    // Clustering.
    ("dsp.dbscan.runs", Kind::Counter),
    ("dsp.dbscan.clusters", Kind::Counter),
    ("dsp.dbscan.noise_points", Kind::Counter),
    // Discrimination.
    ("detector.clusters_scored", Kind::Counter),
    ("detector.tags_classified", Kind::Counter),
    // Decode.
    ("decode.attempts", Kind::Counter),
    ("decode.ok", Kind::Counter),
    ("decode.errors", Kind::Counter),
    ("decode.snr_db", Kind::Histogram),
    ("decode.slot_amp", Kind::Histogram),
    // Fault injection (ros-fault): one counter per injected fault, so
    // traces show exactly what a FaultPlan realized. Emitted from
    // serial reader code only — the export stays thread-invariant.
    ("fault.frames_dropped", Kind::Counter),
    ("fault.frames_duplicated", Kind::Counter),
    ("fault.frames_saturated", Kind::Counter),
    ("fault.bursts_injected", Kind::Counter),
    ("fault.points_corrupted", Kind::Counter),
    ("fault.tracking_spikes", Kind::Counter),
    // Optimizer (ros-optim): DE generations actually run, summed over
    // every minimize / minimize_par call. Emitted from the serial
    // epilogue of each run, so the value is thread-count invariant.
    ("optim.de.generations", Kind::Counter),
    // Corridor reader service (ros-serve). Counters are aggregated
    // across workers, so totals are thread-count invariant even though
    // per-worker interleaving is not.
    ("serve.frames_in", Kind::Counter),
    ("serve.frames_out", Kind::Counter),
    ("serve.reads", Kind::Counter),
    ("serve.backpressure_stalls", Kind::Counter),
    ("serve.channel_max_occupancy", Kind::Gauge),
    ("serve.decode_latency_ns", Kind::Histogram),
    // Geometry/EM memo store (ros-cache). Deltas are exported by
    // `GeomCache::emit_obs` from serial epilogues only, so values are
    // thread-count invariant; per-kind miss counters let a smoke test
    // assert "exactly one build per table kind" for a K=1 corridor.
    ("cache.hit", Kind::Counter),
    ("cache.miss", Kind::Counter),
    ("cache.insert", Kind::Counter),
    ("cache.evict", Kind::Counter),
    ("cache.entries", Kind::Gauge),
    ("cache.rcs_factor.miss", Kind::Counter),
    ("cache.pattern.miss", Kind::Counter),
    ("cache.dispersion.miss", Kind::Counter),
    ("cache.shaping.miss", Kind::Counter),
    // Reader.
    ("reader.frames", Kind::Counter),
    ("reader.cloud_points", Kind::Gauge),
    ("reader.frames_degraded", Kind::Counter),
    // Stage wall time (span durations), pipeline order.
    ("time.reader.run_fast", Kind::Histogram),
    ("time.reader.run_full", Kind::Histogram),
    ("time.reader.gather_echoes", Kind::Histogram),
    ("time.radar.capture_batch", Kind::Histogram),
    ("time.reader.detect", Kind::Histogram),
    ("time.dsp.dbscan", Kind::Histogram),
    ("time.detector.score", Kind::Histogram),
    ("time.reader.spotlight", Kind::Histogram),
    ("time.decode", Kind::Histogram),
];
