//! The ndjson output sink: stderr (default), a file, or an in-memory
//! buffer for tests and `bench perf` telemetry embedding.
//!
//! All writers go through one mutex so lines from parallel workers
//! never interleave mid-line. The disabled path never reaches this
//! module — callers gate on [`crate::enabled`] first.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

/// The active output target. `Stderr` is the default.
pub(crate) enum Out {
    /// Lines go to standard error.
    Stderr,
    /// Lines go to a buffered file (path from `ROS_OBS_FILE`).
    File(BufWriter<File>),
    /// Lines accumulate in memory (tests, bench telemetry).
    Memory(Arc<Mutex<Vec<String>>>),
}

static SINK: Mutex<Option<Out>> = Mutex::new(None);

fn with_sink<R>(f: impl FnOnce(&mut Out) -> R) -> R {
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    let out = guard.get_or_insert(Out::Stderr);
    f(out)
}

/// Appends one ndjson line to the active sink. Write errors are
/// swallowed — telemetry must never take the pipeline down.
pub(crate) fn write_line(line: &str) {
    with_sink(|out| match out {
        Out::Stderr => {
            let stderr = std::io::stderr();
            let mut h = stderr.lock();
            let _ = h.write_all(line.as_bytes());
            let _ = h.write_all(b"\n");
        }
        Out::File(w) => {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
        Out::Memory(buf) => {
            buf.lock().unwrap_or_else(|p| p.into_inner()).push(line.to_string());
        }
    });
}

/// Flushes buffered output (file sinks; others are unbuffered).
pub(crate) fn flush() {
    with_sink(|out| {
        if let Out::File(w) = out {
            let _ = w.flush();
        }
    });
}

/// Routes subsequent lines to `path`, falling back to stderr when the
/// file cannot be created.
pub(crate) fn install_file_sink(path: &str) {
    let out = match File::create(path) {
        Ok(f) => Out::File(BufWriter::new(f)),
        Err(_) => Out::Stderr,
    };
    *SINK.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
}

/// Routes subsequent lines into a shared in-memory buffer and returns
/// it. Used by tests (golden traces) and `bench perf`.
pub fn install_memory_sink() -> Arc<Mutex<Vec<String>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    *SINK.lock().unwrap_or_else(|p| p.into_inner()) = Some(Out::Memory(Arc::clone(&buf)));
    buf
}

/// Removes and returns the current sink (for [`crate::capture_scope`]).
pub(crate) fn take() -> Option<Out> {
    SINK.lock().unwrap_or_else(|p| p.into_inner()).take()
}

/// Restores a sink previously removed with [`take`].
pub(crate) fn restore(prior: Option<Out>) {
    *SINK.lock().unwrap_or_else(|p| p.into_inner()) = prior;
}
