//! Metric export order is a property of [`ros_obs::names::ALL`], not
//! of runtime touch order. Two runs that exercise the pipeline in a
//! different sequence (different configs, different thread timing)
//! must still export metrics in the identical sequence, or diffing two
//! telemetry records becomes line-matching guesswork.

use ros_obs::{names, Level};

#[test]
fn export_order_is_the_names_table_regardless_of_touch_order() {
    ros_obs::set_level(Level::Summary);
    ros_obs::reset_metrics();

    // Touch a scrambled subset — decode before radar, a dynamic name
    // in the middle, reader last.
    ros_obs::hist("decode.snr_db", 21.0);
    ros_obs::count("zz.dynamic.late", 3);
    ros_obs::count("radar.frames_synthesized", 7);
    ros_obs::count("aa.dynamic.early", 1);
    ros_obs::gauge("reader.cloud_points", 41.0);

    let json = ros_obs::metrics_json();

    // Every fixed name appears, in exactly the table's order.
    let mut last_pos = 0usize;
    for (name, _) in names::ALL {
        let needle = format!("\"name\":\"{name}\"");
        let pos = json
            .find(&needle)
            .unwrap_or_else(|| panic!("{name} missing from metrics_json"));
        assert!(
            pos > last_pos || last_pos == 0,
            "{name} exported out of table order"
        );
        last_pos = pos;
    }

    // Dynamic names append after the fixed block, in first-use order
    // ("zz" was touched before "aa", so it exports first).
    let zz = json.find("zz.dynamic.late").expect("dynamic name exported");
    let aa = json.find("aa.dynamic.early").expect("dynamic name exported");
    assert!(zz > last_pos && aa > last_pos, "dynamics before fixed block");
    assert!(zz < aa, "dynamic names must export in first-use order");

    // The touched-only view preserves the same relative order.
    let touched = ros_obs::metrics_json_touched();
    let r = touched.find("\"name\":\"radar.frames_synthesized\"").expect("touched");
    let d = touched.find("\"name\":\"decode.snr_db\"").expect("touched");
    let g = touched.find("\"name\":\"reader.cloud_points\"").expect("touched");
    assert!(r < d && d < g, "touched export must keep table order");

    ros_obs::set_level(Level::Off);
    ros_obs::reset_metrics();
}
