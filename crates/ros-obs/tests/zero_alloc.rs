//! The disabled path ([`ros_obs::Level::Off`]) must be zero-cost: the
//! crate promises instrumented hot loops (per-frame capture, per-point
//! CFAR) pay one relaxed atomic load and nothing else. This test pins
//! the "no allocation" half of that promise with a counting global
//! allocator; if somebody adds an eager `format!` or `to_string` ahead
//! of the level check, the count goes non-zero and this fails loudly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_does_not_allocate() {
    ros_obs::set_level(ros_obs::Level::Off);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let _span = ros_obs::span("reader.run_fast");
        ros_obs::count("decode.attempts", 1);
        ros_obs::hist("decode.snr_db", 17.5);
        ros_obs::gauge("reader.cloud_points", i as f64);
        ros_obs::event(
            "reader.pass",
            &[("frames", 1001u64.into()), ("decoded", true.into())],
        );
        ros_obs::event_detail(
            "decode.slot",
            &[("idx", i.into()), ("amp", 14.2.into())],
        );
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "Level::Off telemetry allocated {} time(s); every entry point \
         must early-return before touching the heap",
        after - before
    );
}
