//! Differential evolution (Storn & Price 1997) with bound constraints.
//!
//! Minimizes `f: ℝᴰ → ℝ` inside a box. The implementation is
//! deterministic given the seed, which keeps the beam-shaping layouts
//! (and therefore every downstream figure) reproducible.
//!
//! Two selection schemes coexist:
//!
//! * [`minimize`] — the classic **asynchronous** Storn & Price loop:
//!   an accepted trial replaces its target immediately, so later
//!   trials in the same generation already mutate against it. Every
//!   historical layout (beam-shaping profiles, ASK amplitude
//!   calibration) was produced by this trajectory, so it is preserved
//!   bit-for-bit.
//! * [`minimize_par`] — **generation-synchronous** selection: each
//!   generation draws all of its randomness and builds all `NP` trial
//!   vectors against the generation-start population, evaluates the
//!   whole batch (fanned out over [`ros_exec::par_map`]), and only
//!   then applies the greedy replacement. Because the RNG stream never
//!   depends on objective values and each trial evaluates
//!   independently, the result is bit-identical at any thread count —
//!   the property `tests/determinism.rs` locks down. The two schemes
//!   converge to the same optima but follow different trajectories,
//!   so they are deliberately separate entry points.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mutation/crossover strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// `DE/rand/1/bin` — classic, good global exploration.
    Rand1Bin,
    /// `DE/best/1/bin` — greedier, faster on smooth objectives.
    Best1Bin,
    /// `DE/rand-to-best/1/bin` — compromise between the two.
    RandToBest1Bin,
}

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct DeConfig {
    /// Population size (≥ 4). Typical: 10·D.
    pub population: usize,
    /// Differential weight F ∈ (0, 2].
    pub f: f64,
    /// Crossover probability CR ∈ [0, 1].
    pub cr: f64,
    /// Maximum generations.
    pub max_generations: usize,
    /// Early-stop when the best cost falls below this.
    pub target_cost: f64,
    /// Early-stop when the population cost spread falls below this.
    pub tol: f64,
    /// Mutation strategy.
    pub strategy: Strategy,
    /// RNG seed (results are deterministic per seed).
    pub seed: u64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig {
            population: 40,
            f: 0.7,
            cr: 0.9,
            max_generations: 300,
            target_cost: f64::NEG_INFINITY,
            tol: 0.0,
            strategy: Strategy::Rand1Bin,
            seed: 0x5eed_0001,
        }
    }
}

/// Result of a DE run.
#[derive(Clone, Debug)]
// lint: allow-dead-pub(returned by minimize; callers bind fields, never the name)
pub struct DeResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub cost: f64,
    /// Generations executed.
    pub generations: usize,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

/// Minimizes `f` within the axis-aligned box `bounds`
/// (`bounds[i] = (lo, hi)` for dimension `i`).
///
/// ```
/// use ros_optim::{minimize, DeConfig};
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let r = minimize(sphere, &[(-3.0, 3.0); 2], &DeConfig::default());
/// assert!(r.cost < 1e-6);
/// ```
///
/// # Panics
/// Panics if `bounds` is empty, any `lo > hi`, or
/// `config.population < 4`.
pub fn minimize<F>(mut f: F, bounds: &[(f64, f64)], config: &DeConfig) -> DeResult
where
    F: FnMut(&[f64]) -> f64,
{
    let dim = bounds.len();
    assert!(dim > 0, "at least one dimension required");
    assert!(
        bounds.iter().all(|&(lo, hi)| lo <= hi),
        "every bound must satisfy lo <= hi"
    );
    assert!(config.population >= 4, "DE needs a population of at least 4");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let np = config.population;

    // Initial population: uniform in the box.
    let mut pop: Vec<Vec<f64>> = (0..np)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
                .collect()
        })
        .collect();
    let mut costs: Vec<f64> = pop.iter().map(|x| f(x)).collect();
    let mut evaluations = np;

    let mut best_idx = argmin(&costs);

    let mut generation = 0;
    while generation < config.max_generations {
        generation += 1;
        for i in 0..np {
            // Pick distinct indices r1, r2, r3 ≠ i.
            let mut pick = || loop {
                let r = rng.gen_range(0..np);
                if r != i {
                    return r;
                }
            };
            let r1 = pick();
            let r2 = loop {
                let r = pick();
                if r != r1 {
                    break r;
                }
            };
            let r3 = loop {
                let r = pick();
                if r != r1 && r != r2 {
                    break r;
                }
            };

            // Mutant vector.
            let mutant: Vec<f64> = (0..dim)
                .map(|d| match config.strategy {
                    Strategy::Rand1Bin => pop[r1][d] + config.f * (pop[r2][d] - pop[r3][d]),
                    Strategy::Best1Bin => {
                        pop[best_idx][d] + config.f * (pop[r1][d] - pop[r2][d])
                    }
                    Strategy::RandToBest1Bin => {
                        pop[i][d]
                            + config.f * (pop[best_idx][d] - pop[i][d])
                            + config.f * (pop[r1][d] - pop[r2][d])
                    }
                })
                .collect();

            // Binomial crossover with a guaranteed mutant gene.
            let forced = rng.gen_range(0..dim);
            let trial: Vec<f64> = (0..dim)
                .map(|d| {
                    let take_mutant = d == forced || rng.gen::<f64>() < config.cr;
                    let v = if take_mutant { mutant[d] } else { pop[i][d] };
                    v.clamp(bounds[d].0, bounds[d].1)
                })
                .collect();

            let trial_cost = f(&trial);
            evaluations += 1;
            if trial_cost <= costs[i] {
                pop[i] = trial;
                costs[i] = trial_cost;
                if trial_cost < costs[best_idx] {
                    best_idx = i;
                }
            }
        }

        if costs[best_idx] <= config.target_cost {
            break;
        }
        if config.tol > 0.0 {
            let worst = costs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if worst - costs[best_idx] < config.tol {
                break;
            }
        }
    }

    ros_obs::count("optim.de.generations", generation);
    DeResult {
        x: pop[best_idx].clone(),
        cost: costs[best_idx],
        generations: generation,
        evaluations,
    }
}

/// Generation-synchronous DE with the per-generation trial batch
/// evaluated in parallel on [`ros_exec`]'s scoped-thread executor.
///
/// Requires `F: Fn + Sync` (shared read-only across workers). The
/// result is **bit-identical at any worker count** — including
/// `ROS_EXEC_THREADS=1` — because the RNG stream is drawn before
/// evaluation and never depends on objective values, and each trial is
/// evaluated independently. It is *not* the same trajectory as
/// [`minimize`] (synchronous vs asynchronous selection; see the module
/// docs), though it converges to the same optima on the benchmark
/// suite.
///
/// # Panics
/// Panics on the same invalid inputs as [`minimize`].
pub fn minimize_par<F>(f: F, bounds: &[(f64, f64)], config: &DeConfig) -> DeResult
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let dim = bounds.len();
    assert!(dim > 0, "at least one dimension required");
    assert!(
        bounds.iter().all(|&(lo, hi)| lo <= hi),
        "every bound must satisfy lo <= hi"
    );
    assert!(config.population >= 4, "DE needs a population of at least 4");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let np = config.population;

    // Initial population: uniform in the box.
    let mut pop: Vec<Vec<f64>> = (0..np)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
                .collect()
        })
        .collect();
    let mut costs: Vec<f64> = ros_exec::par_map(&pop, |x| f(x));
    let mut evaluations = np;

    let mut best_idx = argmin(&costs);

    let mut generation = 0;
    while generation < config.max_generations {
        generation += 1;

        // Draw all randomness and build all NP trials against the
        // generation-start population (synchronous DE). The draw order
        // per member — r1/r2/r3, forced gene, CR coin per gene — is
        // cost-independent, so every thread count sees the same stream.
        let trials: Vec<Vec<f64>> = (0..np)
            .map(|i| {
                // Pick distinct indices r1, r2, r3 ≠ i.
                let mut pick = || loop {
                    let r = rng.gen_range(0..np);
                    if r != i {
                        return r;
                    }
                };
                let r1 = pick();
                let r2 = loop {
                    let r = pick();
                    if r != r1 {
                        break r;
                    }
                };
                let r3 = loop {
                    let r = pick();
                    if r != r1 && r != r2 {
                        break r;
                    }
                };

                // Mutant vector.
                let mutant: Vec<f64> = (0..dim)
                    .map(|d| match config.strategy {
                        Strategy::Rand1Bin => pop[r1][d] + config.f * (pop[r2][d] - pop[r3][d]),
                        Strategy::Best1Bin => {
                            pop[best_idx][d] + config.f * (pop[r1][d] - pop[r2][d])
                        }
                        Strategy::RandToBest1Bin => {
                            pop[i][d]
                                + config.f * (pop[best_idx][d] - pop[i][d])
                                + config.f * (pop[r1][d] - pop[r2][d])
                        }
                    })
                    .collect();

                // Binomial crossover with a guaranteed mutant gene.
                let forced = rng.gen_range(0..dim);
                (0..dim)
                    .map(|d| {
                        let take_mutant = d == forced || rng.gen::<f64>() < config.cr;
                        let v = if take_mutant { mutant[d] } else { pop[i][d] };
                        v.clamp(bounds[d].0, bounds[d].1)
                    })
                    .collect()
            })
            .collect();

        // Evaluate the whole batch (the parallelizable step), then
        // apply greedy one-to-one selection.
        let trial_costs = ros_exec::par_map(&trials, |x| f(x));
        evaluations += np;
        for (i, (trial, trial_cost)) in trials.into_iter().zip(trial_costs).enumerate() {
            if trial_cost <= costs[i] {
                pop[i] = trial;
                costs[i] = trial_cost;
                if trial_cost < costs[best_idx] {
                    best_idx = i;
                }
            }
        }

        if costs[best_idx] <= config.target_cost {
            break;
        }
        if config.tol > 0.0 {
            let worst = costs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if worst - costs[best_idx] < config.tol {
                break;
            }
        }
    }

    // Emitted from the serial epilogue, after the last par_map batch —
    // the count is identical at every thread count.
    ros_obs::count("optim.de.generations", generation);
    DeResult {
        x: pop[best_idx].clone(),
        cost: costs[best_idx],
        generations: generation,
        evaluations,
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfn;

    #[test]
    fn minimizes_sphere() {
        let bounds = vec![(-5.0, 5.0); 4];
        let r = minimize(testfn::sphere, &bounds, &DeConfig::default());
        assert!(r.cost < 1e-6, "cost {}", r.cost);
        assert!(r.x.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let bounds = vec![(-2.0, 2.0); 2];
        let cfg = DeConfig {
            max_generations: 600,
            ..Default::default()
        };
        let r = minimize(testfn::rosenbrock, &bounds, &cfg);
        assert!(r.cost < 1e-4, "cost {}", r.cost);
        assert!((r.x[0] - 1.0).abs() < 0.05 && (r.x[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn minimizes_rastrigin_multimodal() {
        let bounds = vec![(-5.12, 5.12); 3];
        let cfg = DeConfig {
            population: 60,
            max_generations: 800,
            ..Default::default()
        };
        let r = minimize(testfn::rastrigin, &bounds, &cfg);
        assert!(r.cost < 1e-3, "cost {}", r.cost);
    }

    #[test]
    fn respects_bounds() {
        let bounds = vec![(1.0, 2.0), (-3.0, -2.5)];
        // Optimum of the sphere is outside the box; DE must stay inside.
        let r = minimize(testfn::sphere, &bounds, &DeConfig::default());
        assert!(r.x[0] >= 1.0 && r.x[0] <= 2.0);
        assert!(r.x[1] >= -3.0 && r.x[1] <= -2.5);
        // Best feasible point is the corner (1, -2.5).
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = vec![(-5.0, 5.0); 3];
        let cfg = DeConfig {
            seed: 42,
            max_generations: 50,
            ..Default::default()
        };
        let a = minimize(testfn::rastrigin, &bounds, &cfg);
        let b = minimize(testfn::rastrigin, &bounds, &cfg);
        assert_eq!(a.x, b.x);
        assert_eq!(a.cost, b.cost);
        let other = minimize(
            testfn::rastrigin,
            &bounds,
            &DeConfig {
                seed: 43,
                max_generations: 50,
                ..Default::default()
            },
        );
        // Different seeds explore differently (cost may coincide, path not).
        assert_ne!(a.x, other.x);
    }

    #[test]
    fn target_cost_stops_early() {
        let bounds = vec![(-5.0, 5.0); 2];
        let cfg = DeConfig {
            target_cost: 1.0,
            max_generations: 10_000,
            ..Default::default()
        };
        let r = minimize(testfn::sphere, &bounds, &cfg);
        assert!(r.generations < 10_000);
        assert!(r.cost <= 1.0);
    }

    #[test]
    fn all_strategies_solve_sphere() {
        let bounds = vec![(-5.0, 5.0); 3];
        for strategy in [Strategy::Rand1Bin, Strategy::Best1Bin, Strategy::RandToBest1Bin] {
            let cfg = DeConfig {
                strategy,
                ..Default::default()
            };
            let r = minimize(testfn::sphere, &bounds, &cfg);
            assert!(r.cost < 1e-4, "{strategy:?} cost {}", r.cost);
        }
    }

    #[test]
    fn degenerate_bound_is_held_fixed() {
        let bounds = vec![(2.0, 2.0), (-1.0, 1.0)];
        let r = minimize(testfn::sphere, &bounds, &DeConfig::default());
        assert_eq!(r.x[0], 2.0);
        assert!(r.x[1].abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let cfg = DeConfig {
            population: 3,
            ..Default::default()
        };
        minimize(testfn::sphere, &[(-1.0, 1.0)], &cfg);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_rejected() {
        minimize(testfn::sphere, &[(1.0, -1.0)], &DeConfig::default());
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        let bounds = vec![(-5.0, 5.0); 4];
        let cfg = DeConfig {
            max_generations: 60,
            seed: 0xbeef,
            ..Default::default()
        };
        let serial = {
            let _pin = ros_exec::ThreadGuard::pin(Some(1));
            minimize_par(testfn::rastrigin, &bounds, &cfg)
        };
        for t in [2, 8] {
            let _pin = ros_exec::ThreadGuard::pin(Some(t));
            let par = minimize_par(testfn::rastrigin, &bounds, &cfg);
            assert_eq!(serial.cost.to_bits(), par.cost.to_bits(), "threads={t}");
            for (a, b) in serial.x.iter().zip(&par.x) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={t}");
            }
            assert_eq!(serial.evaluations, par.evaluations);
            assert_eq!(serial.generations, par.generations);
        }
    }

    #[test]
    fn parallel_variant_solves_benchmarks() {
        let r = minimize_par(testfn::sphere, &[(-5.0, 5.0); 4], &DeConfig::default());
        assert!(r.cost < 1e-6, "sphere cost {}", r.cost);
        let cfg = DeConfig {
            population: 60,
            max_generations: 800,
            ..Default::default()
        };
        let r = minimize_par(testfn::rastrigin, &[(-5.12, 5.12); 3], &cfg);
        assert!(r.cost < 1e-3, "rastrigin cost {}", r.cost);
    }

    #[test]
    fn evaluation_count_reported() {
        let bounds = vec![(-1.0, 1.0); 2];
        let cfg = DeConfig {
            population: 10,
            max_generations: 5,
            ..Default::default()
        };
        let r = minimize(testfn::sphere, &bounds, &cfg);
        // init (10) + 5 generations × 10 trials.
        assert_eq!(r.evaluations, 10 + 5 * 10);
    }
}
