#![warn(missing_docs)]

//! # ros-optim — differential evolution for RoS beam shaping
//!
//! §4.3 of the paper: *"we use a differential evolution genetic
//! algorithm (DE-GA) as a meta-optimization scheme to search for the
//! phase weights and vertical positions of the PSVAAs, in order to
//! achieve a desired wide elevation beamwidth."*
//!
//! The coupling that forces a meta-optimizer is physical: applying a
//! phase weight to a PSVAA lengthens its transmission lines, which
//! makes the PSVAA taller, which moves every PSVAA above it, which
//! changes *their* effective phases. No closed form exists, but the
//! objective (flatness of the elevation pattern over a target
//! beamwidth) is cheap to evaluate — exactly DE's sweet spot.
//!
//! This crate is a small, self-contained DE implementation (Storn &
//! Price 1997) with bound constraints and a couple of mutation
//! strategies, tested on standard benchmark functions.

pub mod de;
pub mod pso;
pub mod testfn;

pub use de::{minimize, minimize_par, DeConfig, DeResult, Strategy};
pub use pso::{minimize_pso, PsoConfig};
