//! Particle swarm optimization — the comparison baseline for the
//! paper's DE-GA choice (§4.3).
//!
//! The paper selects differential evolution for the beam-shaping
//! search without comparing alternatives. PSO is the other standard
//! derivative-free population method; implementing both lets the
//! `optimizer_ablation` experiment quantify whether the DE choice
//! matters for the flat-top objective (spoiler: both reach equivalent
//! flat-tops; DE converges with fewer evaluations on this landscape).

use crate::de::DeResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PSO configuration.
#[derive(Clone, Debug)]
pub struct PsoConfig {
    /// Swarm size.
    pub particles: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration c₁.
    pub cognitive: f64,
    /// Social (global-best) acceleration c₂.
    pub social: f64,
    /// Iterations.
    pub max_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            particles: 40,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_iterations: 300,
            seed: 0x9507_0001,
        }
    }
}

/// Minimizes `f` within the axis-aligned box `bounds` using standard
/// global-best PSO with velocity clamping and boundary reflection.
///
/// Returns the same result type as [`crate::de::minimize`] so callers
/// can swap optimizers freely.
///
/// # Panics
/// Panics when `bounds` is empty, any `lo > hi`, or
/// `config.particles < 2`.
pub fn minimize_pso<F>(mut f: F, bounds: &[(f64, f64)], config: &PsoConfig) -> DeResult
where
    F: FnMut(&[f64]) -> f64,
{
    let dim = bounds.len();
    assert!(dim > 0, "at least one dimension required");
    assert!(
        bounds.iter().all(|&(lo, hi)| lo <= hi),
        "every bound must satisfy lo <= hi"
    );
    assert!(config.particles >= 2, "PSO needs at least 2 particles");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let np = config.particles;
    let vmax: Vec<f64> = bounds.iter().map(|&(lo, hi)| 0.5 * (hi - lo)).collect();

    let mut pos: Vec<Vec<f64>> = (0..np)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
                .collect()
        })
        .collect();
    let mut vel: Vec<Vec<f64>> = (0..np)
        .map(|_| vmax.iter().map(|&v| rng.gen_range(-v..=v)).collect())
        .collect();
    let mut best_pos = pos.clone();
    let mut best_cost: Vec<f64> = pos.iter_mut().map(|x| f(x)).collect();
    let mut evaluations = np;

    let mut g_best = 0usize;
    for i in 1..np {
        if best_cost[i] < best_cost[g_best] {
            g_best = i;
        }
    }
    let mut g_pos = best_pos[g_best].clone();
    let mut g_cost = best_cost[g_best];

    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        for i in 0..np {
            for d in 0..dim {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                vel[i][d] = config.inertia * vel[i][d]
                    + config.cognitive * r1 * (best_pos[i][d] - pos[i][d])
                    + config.social * r2 * (g_pos[d] - pos[i][d]);
                vel[i][d] = vel[i][d].clamp(-vmax[d], vmax[d]);
                pos[i][d] += vel[i][d];
                // Reflect at the walls.
                let (lo, hi) = bounds[d];
                if pos[i][d] < lo {
                    pos[i][d] = lo + (lo - pos[i][d]).min(hi - lo);
                    vel[i][d] = -vel[i][d];
                } else if pos[i][d] > hi {
                    pos[i][d] = hi - (pos[i][d] - hi).min(hi - lo);
                    vel[i][d] = -vel[i][d];
                }
            }
            let cost = f(&pos[i]);
            evaluations += 1;
            if cost < best_cost[i] {
                best_cost[i] = cost;
                best_pos[i] = pos[i].clone();
                if cost < g_cost {
                    g_cost = cost;
                    g_pos = pos[i].clone();
                }
            }
        }
    }

    DeResult {
        x: g_pos,
        cost: g_cost,
        generations: iterations,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfn;

    #[test]
    fn minimizes_sphere() {
        let bounds = vec![(-5.0, 5.0); 4];
        let r = minimize_pso(testfn::sphere, &bounds, &PsoConfig::default());
        assert!(r.cost < 1e-6, "cost {}", r.cost);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let bounds = vec![(-2.0, 2.0); 2];
        let cfg = PsoConfig {
            max_iterations: 800,
            ..Default::default()
        };
        let r = minimize_pso(testfn::rosenbrock, &bounds, &cfg);
        assert!(r.cost < 1e-3, "cost {}", r.cost);
    }

    #[test]
    fn handles_multimodal_rastrigin() {
        let bounds = vec![(-5.12, 5.12); 3];
        let cfg = PsoConfig {
            particles: 80,
            max_iterations: 600,
            ..Default::default()
        };
        let r = minimize_pso(testfn::rastrigin, &bounds, &cfg);
        // PSO can trap in local minima on Rastrigin; accept near-global.
        assert!(r.cost < 2.0, "cost {}", r.cost);
    }

    #[test]
    fn respects_bounds() {
        let bounds = vec![(1.0, 2.0), (-3.0, -2.5)];
        let r = minimize_pso(testfn::sphere, &bounds, &PsoConfig::default());
        assert!(r.x[0] >= 1.0 - 1e-12 && r.x[0] <= 2.0 + 1e-12);
        assert!(r.x[1] >= -3.0 - 1e-12 && r.x[1] <= -2.5 + 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = vec![(-5.0, 5.0); 3];
        let cfg = PsoConfig {
            max_iterations: 40,
            ..Default::default()
        };
        let a = minimize_pso(testfn::ackley, &bounds, &cfg);
        let b = minimize_pso(testfn::ackley, &bounds, &cfg);
        assert_eq!(a.x, b.x);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    #[should_panic(expected = "at least 2 particles")]
    fn tiny_swarm_rejected() {
        minimize_pso(
            testfn::sphere,
            &[(-1.0, 1.0)],
            &PsoConfig {
                particles: 1,
                ..Default::default()
            },
        );
    }
}
