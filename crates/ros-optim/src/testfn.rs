//! Standard optimization benchmark functions.
//!
//! Used both for testing the DE implementation and as living
//! documentation of the minimizer's calling convention.

use ros_em::units::cast::AsF64;

/// Sphere function `Σ xᵢ²`. Global minimum 0 at the origin.
pub fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Rosenbrock's banana valley
/// `Σ [100(x_{i+1} − xᵢ²)² + (1 − xᵢ)²]`.
/// Global minimum 0 at `(1, …, 1)`.
pub fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

/// Rastrigin's highly multimodal function
/// `10·D + Σ [xᵢ² − 10·cos(2πxᵢ)]`. Global minimum 0 at the origin.
pub fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len().as_f64()
        + x.iter()
            .map(|v| v * v - 10.0 * (std::f64::consts::TAU * v).cos())
            .sum::<f64>()
}

/// Ackley's function. Global minimum 0 at the origin.
pub fn ackley(x: &[f64]) -> f64 {
    let d = x.len().as_f64();
    let sum_sq: f64 = x.iter().map(|v| v * v).sum();
    let sum_cos: f64 = x.iter().map(|v| (std::f64::consts::TAU * v).cos()).sum();
    -20.0 * (-0.2 * (sum_sq / d).sqrt()).exp() - (sum_cos / d).exp()
        + 20.0
        + std::f64::consts::E
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minima_at_known_points() {
        assert_eq!(sphere(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(rosenbrock(&[1.0, 1.0, 1.0]), 0.0);
        assert!(rastrigin(&[0.0, 0.0]).abs() < 1e-12);
        assert!(ackley(&[0.0, 0.0]).abs() < 1e-12);
    }

    #[test]
    fn positive_away_from_minima() {
        assert!(sphere(&[1.0]) > 0.0);
        assert!(rosenbrock(&[0.0, 0.0]) > 0.0);
        assert!(rastrigin(&[0.5]) > 0.0);
        assert!(ackley(&[1.0, 1.0]) > 0.0);
    }

    #[test]
    fn rastrigin_has_local_minima() {
        // x = 1 is near a local minimum with cost ≈ 1, far from global 0.
        let local = rastrigin(&[1.0]);
        assert!(local > 0.5 && local < 2.0);
    }
}
