//! The radar's antenna array (§3.2, §7.1).
//!
//! The paper's TI radar uses 4 Rx antennas at λ/2 spacing (≈28.6°
//! two-way beamwidth) plus two Tx ports: one at the stock vertical
//! polarization for ordinary object detection, and one rotated 90° for
//! tag decoding (§7.1 "we simply rotate one Tx antenna by 90°").

use ros_em::jones::Polarization;
use ros_em::units::cast::AsF64;

/// Radar antenna array geometry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarArray {
    /// Number of Rx antennas.
    pub n_rx: usize,
    /// Rx element spacing \[m\].
    pub rx_spacing_m: f64,
    /// Polarization of the stock Tx/Rx ports.
    pub native_pol: Polarization,
}

impl RadarArray {
    /// The TI radar array: 4 Rx at λ/2, vertical native polarization.
    pub fn ti_default() -> Self {
        RadarArray {
            n_rx: 4,
            rx_spacing_m: ros_em::constants::LAMBDA_CENTER_M / 2.0,
            native_pol: Polarization::V,
        }
    }

    /// Phase of antenna `k` for a far-field source at azimuth `az`
    /// \[rad\] from boresight: `−2π·k·d·sin(az)/λ`.
    pub fn steering_phase(&self, k: usize, az: f64, lambda_m: f64) -> f64 {
        -std::f64::consts::TAU * k.as_f64() * self.rx_spacing_m * az.sin() / lambda_m
    }

    /// Complex steering vector for azimuth `az`.
    pub fn steering_vector(&self, az: f64, lambda_m: f64) -> Vec<ros_em::Complex64> {
        (0..self.n_rx)
            .map(|k| ros_em::Complex64::cis(self.steering_phase(k, az, lambda_m)))
            .collect()
    }

    /// Approximate two-way −3 dB beamwidth \[rad\]: `0.886·λ/(N·d)`.
    pub fn beamwidth_rad(&self, lambda_m: f64) -> f64 {
        0.886 * lambda_m / (self.n_rx.as_f64() * self.rx_spacing_m)
    }

    /// Angular resolution \[rad\] ≈ `λ/(N·d)` (§3.2: 14.3° for N = 8
    /// on the TI radar; 28.6° for the 4-Rx configuration used here).
    pub fn angle_resolution_rad(&self, lambda_m: f64) -> f64 {
        lambda_m / (self.n_rx.as_f64() * self.rx_spacing_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_em::constants::LAMBDA_CENTER_M;
    use ros_em::geom::rad_to_deg;

    #[test]
    fn ti_array_basics() {
        let a = RadarArray::ti_default();
        assert_eq!(a.n_rx, 4);
        assert!((a.rx_spacing_m - LAMBDA_CENTER_M / 2.0).abs() < 1e-12);
    }

    #[test]
    fn angle_resolution_matches_paper() {
        // §7.1: "4 Rx antennas are used to achieve a beamwidth around
        // 28.6°" — λ/(N·d) with N = 4, d = λ/2 is 0.5 rad = 28.6°.
        let a = RadarArray::ti_default();
        let res = rad_to_deg(a.angle_resolution_rad(LAMBDA_CENTER_M));
        assert!((res - 28.6).abs() < 0.2, "resolution {res}°");
    }

    #[test]
    fn steering_phase_zero_at_boresight() {
        let a = RadarArray::ti_default();
        for k in 0..4 {
            assert_eq!(a.steering_phase(k, 0.0, LAMBDA_CENTER_M), -0.0);
        }
    }

    #[test]
    fn steering_vector_progressive_phase() {
        let a = RadarArray::ti_default();
        let az = 0.3;
        let sv = a.steering_vector(az, LAMBDA_CENTER_M);
        assert_eq!(sv.len(), 4);
        let step = ros_em::geom::wrap_angle(sv[1].arg() - sv[0].arg());
        let expected = -std::f64::consts::PI * az.sin();
        assert!((step - expected).abs() < 1e-9);
        // Unit-magnitude entries.
        for v in sv {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn beamwidth_reasonable() {
        let a = RadarArray::ti_default();
        let bw = rad_to_deg(a.beamwidth_rad(LAMBDA_CENTER_M));
        assert!(bw > 20.0 && bw < 30.0, "beamwidth {bw}°");
    }
}
