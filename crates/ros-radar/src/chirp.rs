//! FMCW chirp configuration and derived quantities (§3.2, §7.1).

use ros_em::constants::C;
use ros_em::units::cast::AsF64;

/// FMCW chirp/frame parameters.
///
/// Defaults follow the paper's §7.1 TI radar settings: frame duration
/// 60 µs, frame repetition 1 kHz, frequency slope 66 MHz/µs, baseband
/// sampling 5 Msps, 256 complex samples per frame, carrier 79 GHz.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChirpConfig {
    /// Carrier (chirp start) frequency \[Hz\].
    pub carrier_hz: f64,
    /// Chirp slope \[Hz/s\].
    pub slope_hz_per_s: f64,
    /// Complex baseband sampling rate \[S/s\].
    pub sample_rate_hz: f64,
    /// Samples per chirp.
    pub n_samples: usize,
    /// Frame repetition rate \[Hz\].
    pub frame_rate_hz: f64,
}

impl Default for ChirpConfig {
    fn default() -> Self {
        ChirpConfig {
            carrier_hz: 79.0e9,
            slope_hz_per_s: 66.0e12,
            sample_rate_hz: 5.0e6,
            n_samples: 256,
            frame_rate_hz: 1000.0,
        }
    }
}

impl ChirpConfig {
    /// The paper's TI IWR1443 configuration (§7.1).
    pub fn ti_default() -> Self {
        Self::default()
    }

    /// Swept (sampled) RF bandwidth \[Hz\]: `slope · n/f_s`.
    pub fn bandwidth_hz(&self) -> f64 {
        self.slope_hz_per_s * self.n_samples.as_f64() / self.sample_rate_hz
    }

    /// Range resolution \[m\]: `c / 2B`.
    pub fn range_resolution_m(&self) -> f64 {
        C / (2.0 * self.bandwidth_hz())
    }

    /// Maximum unambiguous range \[m\] for complex sampling:
    /// `f_s · c / (2·slope)`.
    pub fn max_range_m(&self) -> f64 {
        self.sample_rate_hz * C / (2.0 * self.slope_hz_per_s)
    }

    /// Beat (IF) frequency for a target at range `r` \[Hz\]:
    /// `2·slope·r/c`.
    pub fn beat_frequency_hz(&self, range_m: f64) -> f64 {
        2.0 * self.slope_hz_per_s * range_m / C
    }

    /// Range corresponding to FFT bin `bin` of an `n_fft`-point range
    /// spectrum \[m\].
    pub fn bin_to_range_m(&self, bin: usize, n_fft: usize) -> f64 {
        let f_beat = bin.as_f64() * self.sample_rate_hz / n_fft.as_f64();
        f_beat * C / (2.0 * self.slope_hz_per_s)
    }

    /// FFT bin (fractional) corresponding to range `r` in an
    /// `n_fft`-point spectrum.
    pub fn range_to_bin(&self, range_m: f64, n_fft: usize) -> f64 {
        self.beat_frequency_hz(range_m) * n_fft.as_f64() / self.sample_rate_hz
    }

    /// Carrier wavelength \[m\].
    pub fn wavelength_m(&self) -> f64 {
        C / self.carrier_hz
    }

    /// Chirp duration actually sampled \[s\].
    pub fn sampled_duration_s(&self) -> f64 {
        self.n_samples.as_f64() / self.sample_rate_hz
    }
}

/// Designs a chirp configuration meeting range/velocity requirements.
///
/// Given the maximum unambiguous range and radial speed the
/// application needs, picks the slope and chirp interval that deliver
/// them with the TI front-end's fixed sampling rate and sample count,
/// and reports the resulting resolutions. Returns `None` when the
/// requirements are mutually unsatisfiable with this front-end (the
/// range–velocity product exceeds what `f_s·λ/8` allows).
pub fn design_chirp(
    max_range_m: f64,
    max_speed_mps: f64,
    base: &ChirpConfig,
) -> Option<(ChirpConfig, crate::doppler::BurstConfig)> {
    assert!(max_range_m > 0.0 && max_speed_mps > 0.0);
    // Range bound fixes the slope: f_s·c/(2·slope) ≥ max_range.
    let slope = base.sample_rate_hz * C / (2.0 * max_range_m);
    // The chirp must still be sampled in full.
    let chirp_time = base.n_samples.as_f64() / base.sample_rate_hz;
    // Speed bound fixes the chirp interval: λ/(4·T_c) ≥ max_speed.
    let lambda = base.wavelength_m();
    let t_c = lambda / (4.0 * max_speed_mps);
    if t_c < chirp_time {
        return None; // cannot sweep fast enough between chirps
    }
    let cfg = ChirpConfig {
        slope_hz_per_s: slope,
        ..*base
    };
    let burst = crate::doppler::BurstConfig {
        n_chirps: 32,
        chirp_interval_s: t_c,
    };
    Some((cfg, burst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ti_bandwidth_is_about_3_4_ghz() {
        let c = ChirpConfig::ti_default();
        // 256 samples at 5 Msps = 51.2 µs of a 66 MHz/µs sweep.
        assert!((c.bandwidth_hz() - 3.3792e9).abs() < 1e6);
        assert!((c.sampled_duration_s() - 51.2e-6).abs() < 1e-12);
    }

    #[test]
    fn range_resolution_close_to_paper() {
        // §3.2 quotes 3.75 cm for B = 4 GHz; the sampled 3.38 GHz gives
        // ≈4.4 cm.
        let c = ChirpConfig::ti_default();
        assert!((c.range_resolution_m() - 0.0444).abs() < 0.001);
    }

    #[test]
    fn max_range_covers_tag_scenarios() {
        let c = ChirpConfig::ti_default();
        // 5 Msps complex ⇒ ≈11.4 m unambiguous range: covers the 6 m
        // detection limit of Fig. 15 comfortably.
        assert!((c.max_range_m() - 11.36).abs() < 0.05);
    }

    #[test]
    fn beat_frequency_roundtrip() {
        let c = ChirpConfig::ti_default();
        for r in [0.5, 3.0, 6.0] {
            let fb = c.beat_frequency_hz(r);
            let bin = c.range_to_bin(r, 256);
            assert!((c.bin_to_range_m(bin.round() as usize, 256) - r).abs() < c.range_resolution_m());
            assert!(fb < c.sample_rate_hz, "aliased at {r} m");
        }
    }

    #[test]
    fn wavelength_at_79ghz() {
        let c = ChirpConfig::ti_default();
        assert!((c.wavelength_m() - 3.794e-3).abs() < 1e-5);
    }

    #[test]
    fn design_meets_requirements() {
        let base = ChirpConfig::ti_default();
        let (cfg, burst) = design_chirp(30.0, 10.0, &base).expect("feasible");
        assert!(cfg.max_range_m() >= 30.0 * 0.999);
        let v_max = burst.max_unambiguous_speed_mps(cfg.wavelength_m());
        assert!(v_max >= 10.0 * 0.999);
        // Range resolution degrades as max range grows (lower slope,
        // less swept bandwidth) — the classic trade.
        assert!(cfg.range_resolution_m() > base.range_resolution_m());
    }

    #[test]
    fn design_rejects_impossible_combination() {
        let base = ChirpConfig::ti_default();
        // 200 m/s unambiguous speed needs T_c < 4.7 µs — shorter than
        // the 51.2 µs sampled chirp.
        assert!(design_chirp(10.0, 200.0, &base).is_none());
    }

    #[test]
    fn design_roundtrip_on_paper_numbers() {
        // The paper's own config (≈11.4 m, ≈15.8 m/s) is reproducible.
        let base = ChirpConfig::ti_default();
        let (cfg, burst) = design_chirp(11.0, 15.0, &base).expect("feasible");
        assert!((cfg.slope_hz_per_s - 68.2e12).abs() < 1e12);
        assert!(burst.chirp_interval_s >= 51.2e-6);
    }
}
