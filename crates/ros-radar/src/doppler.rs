//! Range–Doppler processing over multi-chirp bursts.
//!
//! The paper's radar transmits one chirp per 1 kHz frame and §7.3
//! argues Doppler shifts (≈19 kHz at 80 mph) are negligible for the
//! *RCS* measurement. Real automotive radars nevertheless use bursts
//! of chirps per frame to estimate radial velocity — which is how the
//! vehicle separates stationary roadside infrastructure (like a RoS
//! tag) from moving traffic before decoding. This module adds that
//! capability: burst synthesis with per-chirp phase progression and
//! the standard 2-D (range × Doppler) FFT.

use crate::array::RadarArray;
use crate::chirp::ChirpConfig;
use crate::echo::{Echo, Pose};
use rand::Rng;
use ros_dsp::fft::fft_in_place;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Burst parameters: `n_chirps` chirps separated by `chirp_interval_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstConfig {
    /// Chirps per burst (Doppler FFT length).
    pub n_chirps: usize,
    /// Chirp repetition interval \[s\].
    pub chirp_interval_s: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            n_chirps: 32,
            chirp_interval_s: 60e-6,
        }
    }
}

impl BurstConfig {
    /// Maximum unambiguous radial speed \[m/s\]: `λ/(4·T_c)`.
    pub fn max_unambiguous_speed_mps(&self, lambda_m: f64) -> f64 {
        lambda_m / (4.0 * self.chirp_interval_s)
    }

    /// Velocity resolution \[m/s\]: `λ/(2·N·T_c)`.
    pub fn velocity_resolution_mps(&self, lambda_m: f64) -> f64 {
        lambda_m / (2.0 * self.n_chirps.as_f64() * self.chirp_interval_s)
    }
}

/// A moving scatterer for burst synthesis.
#[derive(Clone, Copy, Debug)]
pub struct MovingEcho {
    /// The echo at the burst's first chirp.
    pub echo: Echo,
    /// Radial velocity toward the radar \[m/s\] (positive = closing).
    pub radial_speed_mps: f64,
}

/// One burst of IF data from antenna 0: `data[chirp][sample]`.
///
/// (Doppler processing needs only one antenna; AoA uses the
/// single-chirp [`crate::frontend::Frame`] path.)
#[derive(Clone, Debug)]
pub struct Burst {
    /// Per-chirp IF samples.
    pub data: Vec<Vec<Complex64>>,
}

/// Synthesizes a burst for a set of (possibly moving) scatterers.
pub fn synthesize_burst<R: Rng>(
    chirp: &ChirpConfig,
    array: &RadarArray,
    budget: &RadarLinkBudget,
    burst: &BurstConfig,
    pose: Pose,
    echoes: &[MovingEcho],
    rng: &mut R,
) -> Burst {
    let n = chirp.n_samples;
    let lambda = chirp.wavelength_m();
    let mut data = vec![vec![Complex64::ZERO; n]; burst.n_chirps];

    for me in echoes {
        let range0 = pose.range_to(me.echo.pos);
        let az = pose.azimuth_to(me.echo.pos);
        let g = crate::frontend::radar_pattern(az);
        // Gain is non-negative, so `<=` keeps the exact-zero skip
        // behavior while avoiding an exact float comparison.
        if g <= 0.0 {
            continue;
        }
        let amp = me.echo.amp * (g * g);
        for (c, chirp_buf) in data.iter_mut().enumerate() {
            // Range migration within a burst is ≪ a bin; only the
            // carrier phase advances chirp to chirp.
            let dt = c.as_f64() * burst.chirp_interval_s;
            let range = range0 - me.radial_speed_mps * dt;
            let doppler_phase =
                2.0 * std::f64::consts::TAU * me.radial_speed_mps * dt / lambda;
            let f_beat = chirp.beat_frequency_hz(range);
            let w = std::f64::consts::TAU * f_beat / chirp.sample_rate_hz;
            let rot = Complex64::cis(w);
            let mut phasor = amp * Complex64::cis(doppler_phase);
            for s in chirp_buf.iter_mut() {
                *s += phasor;
                phasor = phasor * rot;
            }
        }
    }

    // Thermal noise, per sample.
    let sigma = crate::frontend::per_sample_noise_sigma(budget, chirp, array);
    for chirp_buf in data.iter_mut() {
        for s in chirp_buf.iter_mut() {
            *s += Complex64::new(gauss(rng) * sigma, gauss(rng) * sigma);
        }
    }

    Burst { data }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The range–Doppler power map: `map[doppler_bin][range_bin]` \[mW\].
///
/// Doppler bins are FFT-shifted so bin `n_chirps/2` is zero velocity;
/// use [`doppler_bin_to_speed`] for the axis.
pub fn range_doppler_map(burst: &Burst) -> Vec<Vec<f64>> {
    let n_chirps = burst.data.len();
    let n_samples = burst.data[0].len();
    assert!(n_chirps.is_power_of_two(), "chirp count must be 2^k");

    // Range FFT per chirp.
    let range_spectra: Vec<Vec<Complex64>> = burst
        .data
        .iter()
        .map(|chirp| {
            let mut buf = chirp.clone();
            buf.resize(n_samples.next_power_of_two(), Complex64::ZERO);
            fft_in_place(&mut buf);
            let scale = 1.0 / n_samples.as_f64();
            buf.iter().map(|&c| c * scale).collect()
        })
        .collect();

    // Doppler FFT across chirps per range bin.
    let n_range = range_spectra[0].len();
    let mut map = vec![vec![0.0; n_range]; n_chirps];
    let mut col = vec![Complex64::ZERO; n_chirps];
    for r in 0..n_range {
        for (c, spec) in range_spectra.iter().enumerate() {
            col[c] = spec[r];
        }
        fft_in_place(&mut col);
        for c in 0..n_chirps {
            // FFT-shift: negative Doppler bins to the lower half.
            let shifted = (c + n_chirps / 2) % n_chirps;
            map[shifted][r] = (col[c] / n_chirps.as_f64()).norm_sqr();
        }
    }
    map
}

/// The radial speed of a (shifted) Doppler bin \[m/s\].
pub fn doppler_bin_to_speed(
    bin: usize,
    burst: &BurstConfig,
    lambda_m: f64,
) -> f64 {
    let centered = bin.as_f64() - burst.n_chirps.as_f64() / 2.0;
    centered * lambda_m / (2.0 * burst.n_chirps.as_f64() * burst.chirp_interval_s)
}

/// Finds the strongest cell of a range–Doppler map:
/// `(doppler_bin, range_bin, power)`.
pub fn strongest_cell(map: &[Vec<f64>]) -> (usize, usize, f64) {
    let mut best = (0, 0, 0.0);
    for (d, row) in map.iter().enumerate() {
        for (r, &p) in row.iter().enumerate() {
            if p > best.2 {
                best = (d, r, p);
            }
        }
    }
    best
}

/// A detection in the range–Doppler map.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RdDetection {
    /// Doppler bin (FFT-shifted).
    pub doppler_bin: usize,
    /// Range bin.
    pub range_bin: usize,
    /// Cell power \[mW\].
    pub power: f64,
}

/// 2-D cell-averaging CFAR over a range–Doppler map: per cell, the
/// noise is estimated from a ring of training cells (guard band
/// excluded) and the cell fires when it is a local maximum exceeding
/// `threshold_factor` × the estimate.
pub fn rd_cfar(
    map: &[Vec<f64>],
    training: usize,
    guard: usize,
    threshold_factor: f64,
) -> Vec<RdDetection> {
    let nd = map.len();
    if nd == 0 {
        return Vec::new();
    }
    let nr = map[0].len();
    let mut out = Vec::new();
    for d in 0..nd {
        for r in 0..nr {
            let p = map[d][r];
            // Local max over the 8-neighbourhood.
            let mut is_max = true;
            'nb: for dd in d.saturating_sub(1)..(d + 2).min(nd) {
                for rr in r.saturating_sub(1)..(r + 2).min(nr) {
                    if (dd, rr) != (d, r) && map[dd][rr] > p {
                        is_max = false;
                        break 'nb;
                    }
                }
            }
            if !is_max {
                continue;
            }
            // Training ring.
            let lo_d = d.saturating_sub(training + guard);
            let hi_d = (d + training + guard + 1).min(nd);
            let lo_r = r.saturating_sub(training + guard);
            let hi_r = (r + training + guard + 1).min(nr);
            let mut sum = 0.0;
            let mut count = 0usize;
            for dd in lo_d..hi_d {
                for rr in lo_r..hi_r {
                    let in_guard = dd.abs_diff(d) <= guard && rr.abs_diff(r) <= guard;
                    if !in_guard {
                        sum += map[dd][rr];
                        count += 1;
                    }
                }
            }
            if count == 0 {
                continue;
            }
            let noise = sum / count.as_f64();
            if p > threshold_factor * noise {
                out.push(RdDetection {
                    doppler_bin: d,
                    range_bin: r,
                    power: p,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ros_em::Vec3;

    fn setup() -> (ChirpConfig, RadarArray, RadarLinkBudget, BurstConfig) {
        (
            ChirpConfig::ti_default(),
            RadarArray::ti_default(),
            RadarLinkBudget::ti_eval(),
            BurstConfig::default(),
        )
    }

    fn strong(pos: Vec3, v: f64) -> MovingEcho {
        MovingEcho {
            echo: Echo::new(pos, Complex64::from_polar(10f64.powf(-30.0 / 20.0), 0.2)),
            radial_speed_mps: v,
        }
    }

    #[test]
    fn burst_config_bounds() {
        let b = BurstConfig::default();
        let lam = ChirpConfig::ti_default().wavelength_m();
        // λ/(4·60µs) ≈ 15.8 m/s unambiguous.
        assert!((b.max_unambiguous_speed_mps(lam) - 15.8).abs() < 0.2);
        assert!(b.velocity_resolution_mps(lam) < 1.1);
    }

    #[test]
    fn stationary_target_in_zero_doppler_bin() {
        let (c, a, bu, burst) = setup();
        let mut rng = StdRng::seed_from_u64(31);
        let pos = Vec3::new(0.0, 3.0, 0.0);
        let b = synthesize_burst(
            &c,
            &a,
            &bu,
            &burst,
            Pose::side_looking(Vec3::ZERO),
            &[strong(pos, 0.0)],
            &mut rng,
        );
        let map = range_doppler_map(&b);
        let (d, r, _) = strongest_cell(&map);
        assert_eq!(d, burst.n_chirps / 2, "doppler bin {d}");
        let range = c.bin_to_range_m(r, map[0].len());
        assert!((range - 3.0).abs() < 2.0 * c.range_resolution_m());
    }

    #[test]
    fn moving_target_speed_recovered() {
        let (c, a, bu, burst) = setup();
        let lam = c.wavelength_m();
        for v in [-8.0, 4.0, 10.0] {
            let mut rng = StdRng::seed_from_u64(32);
            let b = synthesize_burst(
                &c,
                &a,
                &bu,
                &burst,
                Pose::side_looking(Vec3::ZERO),
                &[strong(Vec3::new(0.0, 4.0, 0.0), v)],
                &mut rng,
            );
            let map = range_doppler_map(&b);
            let (d, _, _) = strongest_cell(&map);
            let measured = doppler_bin_to_speed(d, &burst, lam);
            assert!(
                (measured - v).abs() <= burst.velocity_resolution_mps(lam),
                "v={v}: measured {measured}"
            );
        }
    }

    #[test]
    fn two_targets_separated_in_doppler() {
        let (c, a, bu, burst) = setup();
        let lam = c.wavelength_m();
        let mut rng = StdRng::seed_from_u64(33);
        // Same range, different speeds: inseparable in range, clean in
        // Doppler — the reason radars add the second dimension.
        let b = synthesize_burst(
            &c,
            &a,
            &bu,
            &burst,
            Pose::side_looking(Vec3::ZERO),
            &[
                strong(Vec3::new(0.0, 4.0, 0.0), 0.0),
                strong(Vec3::new(0.1, 4.0, 0.0), 9.0),
            ],
            &mut rng,
        );
        let map = range_doppler_map(&b);
        // Power at the two expected Doppler bins at the target range.
        let r_bin = c.range_to_bin(4.0, map[0].len()).round() as usize;
        let zero_bin = burst.n_chirps / 2;
        let v_bin = (0..burst.n_chirps)
            .min_by(|&x, &y| {
                let ex = (doppler_bin_to_speed(x, &burst, lam) - 9.0).abs();
                let ey = (doppler_bin_to_speed(y, &burst, lam) - 9.0).abs();
                ex.total_cmp(&ey)
            })
            .unwrap();
        let p_zero = map[zero_bin][r_bin];
        let p_move = map[v_bin][r_bin];
        let p_empty = map[(zero_bin + v_bin) / 2 + 1][r_bin];
        assert!(p_zero > 50.0 * p_empty);
        assert!(p_move > 50.0 * p_empty);
    }

    #[test]
    fn rd_cfar_finds_both_targets() {
        let (c, a, bu, burst) = setup();
        let mut rng = StdRng::seed_from_u64(35);
        let b = synthesize_burst(
            &c,
            &a,
            &bu,
            &burst,
            Pose::side_looking(Vec3::ZERO),
            &[
                strong(Vec3::new(0.0, 3.0, 0.0), 0.0),
                strong(Vec3::new(0.0, 5.0, 0.0), 7.0),
            ],
            &mut rng,
        );
        let map = range_doppler_map(&b);
        let dets = rd_cfar(&map, 6, 2, 10.0);
        assert!(dets.len() >= 2, "found {dets:?}");
        // One stationary, one moving.
        let lam = c.wavelength_m();
        let speeds: Vec<f64> = dets
            .iter()
            .map(|d| doppler_bin_to_speed(d.doppler_bin, &burst, lam))
            .collect();
        assert!(speeds.iter().any(|v| v.abs() < 1.0), "{speeds:?}");
        assert!(speeds.iter().any(|v| (v - 7.0).abs() < 1.0), "{speeds:?}");
    }

    #[test]
    fn rd_cfar_quiet_on_noise() {
        let (c, a, bu, burst) = setup();
        let mut rng = StdRng::seed_from_u64(36);
        let b = synthesize_burst(
            &c,
            &a,
            &bu,
            &burst,
            Pose::side_looking(Vec3::ZERO),
            &[],
            &mut rng,
        );
        let map = range_doppler_map(&b);
        let dets = rd_cfar(&map, 6, 2, 15.0);
        assert!(dets.len() <= 2, "false alarms: {}", dets.len());
    }

    #[test]
    fn aliasing_beyond_unambiguous_speed() {
        let (c, a, bu, burst) = setup();
        let lam = c.wavelength_m();
        let v_max = burst.max_unambiguous_speed_mps(lam);
        let v = v_max * 1.5; // aliases to −v_max/2
        let mut rng = StdRng::seed_from_u64(34);
        let b = synthesize_burst(
            &c,
            &a,
            &bu,
            &burst,
            Pose::side_looking(Vec3::ZERO),
            &[strong(Vec3::new(0.0, 4.0, 0.0), v)],
            &mut rng,
        );
        let map = range_doppler_map(&b);
        let (d, _, _) = strongest_cell(&map);
        let measured = doppler_bin_to_speed(d, &burst, lam);
        assert!(
            (measured - (v - 2.0 * v_max)).abs() < 1.0,
            "expected alias near {}, got {measured}",
            v - 2.0 * v_max
        );
    }
}
