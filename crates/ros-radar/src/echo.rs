//! The interface between scene and radar: scatterer echoes.

use ros_em::{Complex64, Vec3};

/// One scatterer's return as seen at the radar's reference antenna.
///
/// Produced by the scene layer, consumed by the radar front-end. The
/// amplitude convention is √mW at full Rx gain: `|amp|²` equals the
/// received power P_r from the radar equation, and `amp.arg()` carries
/// the round-trip propagation phase `−4πd/λ` plus any scatterer phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Echo {
    /// Absolute scatterer position \[m\] (world frame).
    pub pos: Vec3,
    /// Complex received amplitude \[√mW\].
    pub amp: Complex64,
}

impl Echo {
    /// Creates an echo.
    pub fn new(pos: Vec3, amp: Complex64) -> Self {
        Echo { pos, amp }
    }

    /// Received power in dBm (−∞ for a zero amplitude).
    pub fn power_dbm(&self) -> f64 {
        10.0 * self.amp.norm_sqr().max(1e-300).log10()
    }
}

/// The radar's pose: position plus boresight direction.
///
/// The RoS radar is side-looking: boresight is world +y by convention,
/// and azimuth is measured from boresight toward +x. `Pose` still
/// carries an explicit yaw offset for completeness (vehicle pitch/roll
/// are neglected as the paper does).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pose {
    /// Radar phase-centre position \[m\].
    pub pos: Vec3,
    /// Boresight rotation from +y, positive toward +x \[rad\].
    pub yaw: f64,
}

impl Pose {
    /// A side-looking pose at `pos` with boresight exactly +y.
    pub fn side_looking(pos: Vec3) -> Self {
        Pose { pos, yaw: 0.0 }
    }

    /// Azimuth of `target` from boresight \[rad\], positive toward +x.
    pub fn azimuth_to(&self, target: Vec3) -> f64 {
        let dx = target.x - self.pos.x;
        let dy = target.y - self.pos.y;
        dx.atan2(dy) - self.yaw
    }

    /// Elevation of `target` above the radar's horizontal plane \[rad\].
    pub fn elevation_to(&self, target: Vec3) -> f64 {
        self.pos.elevation_to(target)
    }

    /// Slant range to `target` \[m\].
    pub fn range_to(&self, target: Vec3) -> f64 {
        self.pos.distance(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_power() {
        let e = Echo::new(Vec3::ZERO, Complex64::from_polar(1e-3, 0.5));
        assert!((e.power_dbm() - (-60.0)).abs() < 1e-9);
    }

    #[test]
    fn pose_azimuth_conventions() {
        let p = Pose::side_looking(Vec3::ZERO);
        // Straight ahead (boresight, +y): azimuth 0.
        assert!((p.azimuth_to(Vec3::new(0.0, 3.0, 0.0))).abs() < 1e-12);
        // Toward +x (direction of travel): positive azimuth.
        assert!(p.azimuth_to(Vec3::new(1.0, 1.0, 0.0)) > 0.0);
        // Toward −x: negative.
        assert!(p.azimuth_to(Vec3::new(-1.0, 1.0, 0.0)) < 0.0);
        // 45°.
        let az = p.azimuth_to(Vec3::new(2.0, 2.0, 0.0));
        assert!((az - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn pose_yaw_shifts_azimuth() {
        let p = Pose {
            pos: Vec3::ZERO,
            yaw: 0.1,
        };
        let az = p.azimuth_to(Vec3::new(0.0, 5.0, 0.0));
        assert!((az + 0.1).abs() < 1e-12);
    }

    #[test]
    fn pose_range_and_elevation() {
        let p = Pose::side_looking(Vec3::new(0.0, 0.0, 1.0));
        let t = Vec3::new(0.0, 3.0, 1.0);
        assert!((p.range_to(t) - 3.0).abs() < 1e-12);
        assert!((p.elevation_to(t)).abs() < 1e-12);
        let above = Vec3::new(0.0, 3.0, 4.0);
        assert!((p.elevation_to(above) - 0.7853981633974483).abs() < 1e-9);
    }
}
