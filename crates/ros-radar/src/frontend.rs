//! IF signal synthesis: turning scene echoes into dechirped samples.
//!
//! For a scatterer at range `d` and azimuth `θ`, the dechirped
//! (beat) signal at Rx antenna `k` is (paper Eq. 2):
//!
//! ```text
//! s(t, k) = A · exp(j·2π·f_b·t) · exp(j·φ_k(θ))      f_b = 2·γ·d/c
//! ```
//!
//! The scene already folded the radar equation and the round-trip
//! carrier phase into the echo amplitude; the front-end adds the beat
//! tone, the per-antenna steering phase, the radar's own antenna
//! pattern, and thermal noise scaled so that the *post-processing*
//! noise floor equals the link budget's `L₀` (−62 dBm for the TI
//! radar, §5.3).

use crate::array::RadarArray;
use crate::chirp::ChirpConfig;
use crate::echo::{Echo, Pose};
use rand::Rng;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Exponent of the radar's own antenna element pattern (per way).
/// Two-way cos^3 gives a ±28° half-power field of view, matching the
/// "around 60°" total FoV of §7.3.
pub(crate) const RADAR_PATTERN_EXP: f64 = 1.5;

/// Raw IF data of one frame: `data[k][n]` is sample `n` of antenna `k`.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Per-antenna complex IF samples.
    pub data: Vec<Vec<Complex64>>,
    /// The radar pose when the frame fired.
    pub pose: Pose,
}

impl Frame {
    /// Number of Rx antennas.
    pub fn n_rx(&self) -> usize {
        self.data.len()
    }

    /// Samples per antenna.
    pub fn n_samples(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }
}

/// The radar's one-way element field pattern at azimuth `az` \[rad\].
pub fn radar_pattern(az: f64) -> f64 {
    let c = az.cos();
    if c <= 0.0 {
        0.0
    } else {
        c.powf(RADAR_PATTERN_EXP)
    }
}

/// Per-sample complex-noise standard deviation (per real/imag
/// component) that yields the link budget's noise floor after the
/// range FFT (÷N coherent gain) and beamforming (÷K) used by
/// [`crate::processing`].
pub(crate) fn per_sample_noise_sigma(budget: &RadarLinkBudget, chirp: &ChirpConfig, array: &RadarArray) -> f64 {
    let floor_mw = ros_em::db::dbm_to_mw(budget.noise_floor_dbm());
    // Processing averages N samples and K antennas: noise power at the
    // output is σ_total²/(N·K), so σ_total² = floor·N·K. Each of the
    // two quadratures carries half the power.
    let total = floor_mw * chirp.n_samples.as_f64() * array.n_rx.as_f64();
    (total / 2.0).sqrt()
}

/// Synthesizes the *deterministic* part of an IF frame: every echo's
/// beat tone with steering phases and the radar's own antenna pattern,
/// but **no thermal noise**. Pure function of its inputs — safe to run
/// on worker threads ([`synthesize_frame`] layers the noise on top).
pub(crate) fn synthesize_signal(
    chirp: &ChirpConfig,
    array: &RadarArray,
    pose: Pose,
    echoes: &[Echo],
) -> Frame {
    let n = chirp.n_samples;
    let k_rx = array.n_rx;
    let lambda = chirp.wavelength_m();
    let mut data = vec![vec![Complex64::ZERO; n]; k_rx];

    for echo in echoes {
        if echo.amp == Complex64::ZERO {
            continue;
        }
        let range = pose.range_to(echo.pos);
        let az = pose.azimuth_to(echo.pos);
        let g = radar_pattern(az);
        // Gain is non-negative, so `<=` keeps the exact-zero skip
        // behavior while avoiding an exact float comparison.
        if g <= 0.0 {
            continue;
        }
        // Two-way radar antenna pattern.
        let amp = echo.amp * (g * g);
        let f_beat = chirp.beat_frequency_hz(range);
        let w = std::f64::consts::TAU * f_beat / chirp.sample_rate_hz;
        let rot = Complex64::cis(w);
        for (k, ant) in data.iter_mut().enumerate() {
            let mut phasor = amp * Complex64::cis(array.steering_phase(k, az, lambda));
            for s in ant.iter_mut() {
                *s += phasor;
                phasor = phasor * rot;
            }
        }
    }

    Frame { data, pose }
}

/// Reusable split-complex scratch for [`synthesize_signal_into`]: the
/// tone accumulator planes (sample-major, antenna-minor) and the
/// per-antenna phasor lanes. Keeping real and imaginary parts in
/// separate contiguous `f64` arrays lets the inner antenna loop
/// autovectorize; one scratch per worker keeps the batch path
/// allocation-free after warm-up.
#[derive(Clone, Debug, Default)]
pub struct SynthScratch {
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
    ph_re: Vec<f64>,
    ph_im: Vec<f64>,
}

/// Scratch-buffer twin of [`synthesize_signal`]: writes the identical
/// noiseless frame into `frame`, reusing `scratch` between calls.
///
/// Bit-identity with the reference implementation holds because every
/// per-element operation is preserved exactly: the phasor recurrence
/// `phasor = phasor * rot` becomes the split-complex pair
/// `(pr·rot.re − pi·rot.im, pr·rot.im + pi·rot.re)` — the literal
/// expansion of `Complex64::mul` — and accumulation stays one add per
/// (sample, antenna) per echo in the same echo order. Only the loop
/// nest is transposed (sample-outer, antenna-inner) so the antenna
/// lanes vectorize; the per-`k` operation sequence is unchanged.
// lint: hot-path
pub(crate) fn synthesize_signal_into(
    chirp: &ChirpConfig,
    array: &RadarArray,
    pose: Pose,
    echoes: &[Echo],
    scratch: &mut SynthScratch,
    frame: &mut Frame,
) {
    let n = chirp.n_samples;
    let k_rx = array.n_rx;
    let lambda = chirp.wavelength_m();

    frame.pose = pose;
    frame.data.truncate(k_rx);
    while frame.data.len() < k_rx {
        frame.data.push(Vec::default());
    }
    for row in frame.data.iter_mut() {
        // Length fix-up only: every element is overwritten by the
        // final transpose out of the accumulator planes, so a warm
        // row of the right length needs no zero-fill pass.
        if row.len() != n {
            row.clear();
            row.resize(n, Complex64::ZERO);
        }
    }

    let SynthScratch {
        acc_re,
        acc_im,
        ph_re,
        ph_im,
    } = scratch;
    acc_re.clear();
    acc_re.resize(n * k_rx, 0.0);
    acc_im.clear();
    acc_im.resize(n * k_rx, 0.0);
    ph_re.clear();
    ph_re.resize(k_rx, 0.0);
    ph_im.clear();
    ph_im.resize(k_rx, 0.0);

    for echo in echoes {
        if echo.amp == Complex64::ZERO {
            continue;
        }
        let range = pose.range_to(echo.pos);
        let az = pose.azimuth_to(echo.pos);
        let g = radar_pattern(az);
        // Gain is non-negative, so `<=` keeps the exact-zero skip
        // behavior while avoiding an exact float comparison.
        if g <= 0.0 {
            continue;
        }
        // Two-way radar antenna pattern.
        let amp = echo.amp * (g * g);
        let f_beat = chirp.beat_frequency_hz(range);
        let w = std::f64::consts::TAU * f_beat / chirp.sample_rate_hz;
        let rot = Complex64::cis(w);
        let (rot_re, rot_im) = (rot.re, rot.im);
        for k in 0..k_rx {
            let p = amp * Complex64::cis(array.steering_phase(k, az, lambda));
            ph_re[k] = p.re;
            ph_im[k] = p.im;
        }
        // Explicit k_rx-length reborrows so the `k` loops below carry
        // no bounds checks and vectorize across the antenna lanes.
        let ph_r = &mut ph_re[..k_rx];
        let ph_i = &mut ph_im[..k_rx];
        for j in 0..n {
            let base = j * k_rx;
            let acc_r = &mut acc_re[base..base + k_rx];
            let acc_i = &mut acc_im[base..base + k_rx];
            for k in 0..k_rx {
                let pr = ph_r[k];
                let pi = ph_i[k];
                acc_r[k] += pr;
                acc_i[k] += pi;
                ph_r[k] = pr * rot_re - pi * rot_im;
                ph_i[k] = pr * rot_im + pi * rot_re;
            }
        }
    }

    for (k, row) in frame.data.iter_mut().enumerate() {
        for (j, s) in row.iter_mut().enumerate() {
            *s = Complex64::new(acc_re[j * k_rx + k], acc_im[j * k_rx + k]);
        }
    }
}

/// Unit-variance complex Gaussian draws for one frame's thermal noise:
/// `out[k][n]` pairs with sample `n` of antenna `k`. Draws consume the
/// RNG in exactly the order [`synthesize_frame`] does (antenna-major,
/// sample-major, one [`gaussian_pair`] per sample giving re then im),
/// so pre-drawing packets for a batch and applying them later is
/// bit-identical to the serial capture loop.
pub(crate) fn draw_noise<R: Rng>(n_rx: usize, n_samples: usize, rng: &mut R) -> Vec<Vec<Complex64>> {
    (0..n_rx)
        .map(|_| {
            (0..n_samples)
                .map(|_| {
                    let (re, im) = gaussian_pair(rng);
                    Complex64::new(re, im)
                })
                .collect()
        })
        .collect()
}

/// Fills a pre-sized slice with unit-variance complex Gaussian draws in
/// the [`draw_noise`] order (element-major, one pair per sample). Lets
/// a batch interleave per-frame noise and phase-walk draws into flat
/// segments of one reusable buffer.
// lint: hot-path
pub(crate) fn fill_noise<R: Rng>(rng: &mut R, out: &mut [Complex64]) {
    for g in out.iter_mut() {
        let (re, im) = gaussian_pair(rng);
        *g = Complex64::new(re, im);
    }
}

/// [`add_noise`] for a flat antenna-major noise buffer laid out
/// `noise[k·n_samples + j]` (see [`fill_noise`]). Deterministic; safe
/// on worker threads.
// lint: hot-path
pub(crate) fn add_noise_from_slice(frame: &mut Frame, noise: &[Complex64], sigma: f64) {
    let n = frame.n_samples();
    for (k, ant) in frame.data.iter_mut().enumerate() {
        let nz = &noise[k * n..(k + 1) * n];
        for (s, g) in ant.iter_mut().zip(nz) {
            *s += Complex64::new(g.re * sigma, g.im * sigma);
        }
    }
}

/// Adds pre-drawn unit-variance noise (from [`draw_noise`]), scaled by
/// `sigma`, onto a frame. Deterministic; safe on worker threads.
pub(crate) fn add_noise(frame: &mut Frame, noise: &[Vec<Complex64>], sigma: f64) {
    for (ant, nz) in frame.data.iter_mut().zip(noise) {
        for (s, g) in ant.iter_mut().zip(nz) {
            *s += Complex64::new(g.re * sigma, g.im * sigma);
        }
    }
}

/// Synthesizes the IF frame for a set of echoes.
///
/// `rng` drives the AWGN; pass a seeded RNG for reproducible
/// experiments.
pub fn synthesize_frame<R: Rng>(
    chirp: &ChirpConfig,
    array: &RadarArray,
    budget: &RadarLinkBudget,
    pose: Pose,
    echoes: &[Echo],
    rng: &mut R,
) -> Frame {
    let mut frame = synthesize_signal(chirp, array, pose, echoes);
    let noise = draw_noise(array.n_rx, chirp.n_samples, rng);
    add_noise(&mut frame, &noise, per_sample_noise_sigma(budget, chirp, array));
    frame
}

/// Standard normal *pair* via the Marsaglia polar method (avoids a
/// rand_distr dep). Noise is always consumed as (re, im) pairs, and the
/// polar transform hands back two independent normals per accepted
/// candidate — for the cost of one `ln` + one `sqrt` and **no** trig,
/// where the one-at-a-time Box–Muller this replaced spent an `ln`, a
/// `sqrt` *and* a `cos` per single normal. The rejection loop (≈21.5%
/// of candidates fall outside the unit disc) is deterministic for a
/// seeded RNG, which is all the capture pipeline requires.
// lint: hot-path
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    loop {
        let x = 2.0 * rng.gen::<f64>() - 1.0;
        let y = 2.0 * rng.gen::<f64>() - 1.0;
        let s = x * x + y * y;
        // Reject outside the unit disc; also reject a (sub)normal-tiny
        // `s`, where `ln(s)/s` overflows.
        if s >= 1.0 || s < f64::MIN_POSITIVE {
            continue;
        }
        let f = (-2.0 * s.ln() / s).sqrt();
        return (x * f, y * f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ros_em::Vec3;

    fn setup() -> (ChirpConfig, RadarArray, RadarLinkBudget) {
        (
            ChirpConfig::ti_default(),
            RadarArray::ti_default(),
            RadarLinkBudget::ti_eval(),
        )
    }

    #[test]
    fn frame_dimensions() {
        let (c, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let f = synthesize_frame(&c, &a, &b, Pose::side_looking(Vec3::ZERO), &[], &mut rng);
        assert_eq!(f.n_rx(), 4);
        assert_eq!(f.n_samples(), 256);
    }

    #[test]
    fn single_echo_produces_beat_tone() {
        let (c, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let pos = Vec3::new(0.0, 3.0, 0.0);
        let echo = Echo::new(pos, Complex64::from_polar(1.0, 0.0)); // 0 dBm: huge
        let f = synthesize_frame(
            &c,
            &a,
            &b,
            Pose::side_looking(Vec3::ZERO),
            &[echo],
            &mut rng,
        );
        // DFT at the predicted beat bin dominates.
        let n = f.n_samples();
        let fb = c.beat_frequency_hz(3.0);
        let corr: Complex64 = (0..n)
            .map(|i| {
                f.data[0][i]
                    * Complex64::cis(-std::f64::consts::TAU * fb * i as f64 / c.sample_rate_hz)
            })
            .sum();
        let peak = corr.abs() / n as f64;
        assert!(peak > 0.5, "beat tone missing: {peak}");
    }

    #[test]
    fn steering_phases_consistent_with_azimuth() {
        let (c, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let pos = Vec3::new(1.5, 3.0, 0.0); // az = atan2(1.5, 3) ≈ 26.6°
        let echo = Echo::new(pos, Complex64::from_polar(1.0, 0.0));
        let pose = Pose::side_looking(Vec3::ZERO);
        let f = synthesize_frame(&c, &a, &b, pose, &[echo], &mut rng);
        let az = pose.azimuth_to(pos);
        let lambda = c.wavelength_m();
        // Phase difference between adjacent antennas at sample 0 should
        // match the steering phase (noise is tiny vs a 0 dBm echo).
        let measured = ros_em::geom::wrap_angle(f.data[1][0].arg() - f.data[0][0].arg());
        let expected = a.steering_phase(1, az, lambda);
        assert!(
            (measured - expected).abs() < 0.05,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn noise_floor_calibrated() {
        // With no echoes, the post-processing noise power (mean over
        // bins after FFT÷N and K-antenna averaging) must sit near the
        // link-budget floor.
        let (c, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let f = synthesize_frame(&c, &a, &b, Pose::side_looking(Vec3::ZERO), &[], &mut rng);
            // Beamform at boresight then single-bin DFT power, averaged
            // over several bins.
            let n = f.n_samples();
            for bin in [10usize, 50, 100, 200] {
                let mut y = Complex64::ZERO;
                for k in 0..f.n_rx() {
                    let mut xk = Complex64::ZERO;
                    for i in 0..n {
                        xk += f.data[k][i]
                            * Complex64::cis(
                                -std::f64::consts::TAU * bin as f64 * i as f64 / n as f64,
                            );
                    }
                    y += xk / n as f64;
                }
                y = y / f.n_rx() as f64;
                acc += y.norm_sqr();
            }
        }
        let mean_mw = acc / (trials * 4) as f64;
        let mean_dbm = 10.0 * mean_mw.log10();
        let floor = b.noise_floor_dbm();
        assert!(
            (mean_dbm - floor).abs() < 1.5,
            "measured floor {mean_dbm:.1} dBm vs budget {floor:.1} dBm"
        );
    }

    #[test]
    fn behind_the_array_is_silent() {
        let (c, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let pos = Vec3::new(0.0, -3.0, 0.0); // behind boresight
        let echo = Echo::new(pos, Complex64::from_polar(1.0, 0.0));
        let f = synthesize_frame(
            &c,
            &a,
            &b,
            Pose::side_looking(Vec3::ZERO),
            &[echo],
            &mut rng,
        );
        // Only noise present: total power per sample far below 0 dBm.
        let p: f64 = f.data[0].iter().map(|s| s.norm_sqr()).sum::<f64>() / 256.0;
        assert!(10.0 * p.log10() < -20.0);
    }

    #[test]
    fn pattern_rolls_off() {
        assert_eq!(radar_pattern(0.0), 1.0);
        assert!(radar_pattern(0.5) < 1.0);
        assert_eq!(radar_pattern(2.0), 0.0); // >90°
    }

    #[test]
    fn signal_into_bit_identical_to_direct() {
        let (c, a, _) = setup();
        let pose = Pose::side_looking(Vec3::new(0.2, -0.1, 0.0));
        let echoes = [
            Echo::new(Vec3::new(0.5, 3.0, 0.0), Complex64::from_polar(2e-3, 0.4)),
            Echo::new(Vec3::new(-1.0, 4.0, 0.0), Complex64::from_polar(7e-4, -1.1)),
            Echo::new(Vec3::new(0.0, -2.0, 0.0), Complex64::from_polar(1e-3, 0.0)), // behind
            Echo::new(Vec3::new(1.0, 1.0, 0.0), Complex64::ZERO),                   // skipped
        ];
        let direct = synthesize_signal(&c, &a, pose, &echoes);
        let mut scratch = SynthScratch::default();
        let mut frame = Frame {
            data: vec![vec![Complex64::new(9.0, 9.0); 3]; 7], // wrong shape, dirty
            pose: Pose::side_looking(Vec3::ZERO),
        };
        // Twice through the same scratch: reuse must not change bits.
        for _ in 0..2 {
            synthesize_signal_into(&c, &a, pose, &echoes, &mut scratch, &mut frame);
            assert_eq!(frame.n_rx(), direct.n_rx());
            assert_eq!(frame.n_samples(), direct.n_samples());
            for (da, fa) in direct.data.iter().zip(&frame.data) {
                for (d, f) in da.iter().zip(fa) {
                    assert_eq!(d.re.to_bits(), f.re.to_bits());
                    assert_eq!(d.im.to_bits(), f.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn noise_into_matches_nested_draws() {
        let (n_rx, n_samples) = (4usize, 64usize);
        let nested = draw_noise(n_rx, n_samples, &mut StdRng::seed_from_u64(42));
        let mut flat = vec![Complex64::new(1.0, 1.0); 5]; // dirty, wrong length
        flat.clear();
        flat.resize(n_rx * n_samples, Complex64::ZERO);
        fill_noise(&mut StdRng::seed_from_u64(42), &mut flat);
        assert_eq!(flat.len(), n_rx * n_samples);
        for k in 0..n_rx {
            for j in 0..n_samples {
                let a = nested[k][j];
                let b = flat[k * n_samples + j];
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }

        // Applying the flat buffer matches applying the nested one.
        let (c, a, _) = setup();
        let pose = Pose::side_looking(Vec3::ZERO);
        let echo = Echo::new(Vec3::new(0.0, 3.0, 0.0), Complex64::from_polar(1e-3, 0.2));
        let mut f1 = synthesize_signal(&c, &a, pose, &[echo]);
        let mut f2 = f1.clone();
        let nested = draw_noise(f1.n_rx(), f1.n_samples(), &mut StdRng::seed_from_u64(7));
        let mut flat = Vec::new();
        flat.clear();
        flat.resize(f2.n_rx() * f2.n_samples(), Complex64::ZERO);
        fill_noise(&mut StdRng::seed_from_u64(7), &mut flat);
        add_noise(&mut f1, &nested, 0.31);
        add_noise_from_slice(&mut f2, &flat, 0.31);
        for (da, fa) in f1.data.iter().zip(&f2.data) {
            for (d, s) in da.iter().zip(fa) {
                assert_eq!(d.re.to_bits(), s.re.to_bits());
                assert_eq!(d.im.to_bits(), s.im.to_bits());
            }
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n / 2)
            .flat_map(|_| {
                let (a, b) = gaussian_pair(&mut rng);
                [a, b]
            })
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
