//! Front-end impairments: phase noise, quantization, IQ imbalance.
//!
//! The paper's TI evaluation board is noted (§8) for its "limited
//! transmit power, antenna gain and high receiver noise figure"; real
//! front-ends add correlated impairments on top of thermal noise. This
//! module injects the three classics into synthesized IF data so their
//! effect on tag decoding can be quantified:
//!
//! * **phase noise** — a random-walk carrier phase common to all
//!   antennas within a chirp,
//! * **ADC quantization** — mid-rise uniform quantizers per I/Q rail,
//! * **IQ imbalance** — gain mismatch and quadrature skew producing an
//!   image tone.

use crate::frontend::Frame;
use rand::Rng;
use ros_em::Complex64;
use ros_em::units::cast::AsF64;

/// Impairment configuration. `Default` is a clean front-end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Impairments {
    /// Per-sample RMS of the phase random walk \[rad\] (0 = off).
    pub phase_noise_rad_per_sample: f64,
    /// ADC bits per I/Q rail (0 = ideal converter).
    pub adc_bits: u32,
    /// Full-scale amplitude of the ADC \[√mW\] (must be > 0 when
    /// `adc_bits > 0`).
    pub adc_full_scale: f64,
    /// Amplitude gain mismatch of the Q rail (0 = balanced).
    pub iq_gain_mismatch: f64,
    /// Quadrature phase skew \[rad\] (0 = perfect 90°).
    pub iq_phase_skew_rad: f64,
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments {
            phase_noise_rad_per_sample: 0.0,
            adc_bits: 0,
            adc_full_scale: 1.0,
            iq_gain_mismatch: 0.0,
            iq_phase_skew_rad: 0.0,
        }
    }
}

impl Impairments {
    /// A plausible evaluation-board profile: −80 dBc/Hz-class phase
    /// noise, 12-bit ADC, 1% IQ imbalance.
    pub fn eval_board() -> Self {
        Impairments {
            phase_noise_rad_per_sample: 0.002,
            adc_bits: 12,
            adc_full_scale: 0.1,
            iq_gain_mismatch: 0.01,
            iq_phase_skew_rad: 0.01,
        }
    }

    /// True when every impairment is disabled.
    pub fn is_clean(&self) -> bool {
        self.phase_noise_rad_per_sample == 0.0 // lint: allow-float-eq(disabled-flag sentinel)
            && self.adc_bits == 0
            && self.iq_gain_mismatch == 0.0 // lint: allow-float-eq(disabled-flag sentinel)
            && self.iq_phase_skew_rad == 0.0 // lint: allow-float-eq(disabled-flag sentinel)
    }

    /// Applies the impairments to a frame in place.
    pub fn apply<R: Rng>(&self, frame: &mut Frame, rng: &mut R) {
        if self.is_clean() {
            return;
        }
        let walk = self.draw_walk(frame.n_samples(), rng);
        self.apply_with_walk(frame, &walk);
    }

    /// Draws the per-frame phase random walk (the only stochastic part
    /// of the impairment chain). Consumes the RNG exactly as [`apply`]
    /// does — zero draws when phase noise is off — so walks can be
    /// pre-drawn serially for a batch and applied on worker threads
    /// via [`apply_with_walk`] with bit-identical results.
    pub(crate) fn draw_walk<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        // Phase noise: one random walk shared by all antennas (common
        // LO), refreshed per frame.
        let mut walk = vec![0.0f64; n];
        if self.phase_noise_rad_per_sample > 0.0 {
            let mut acc = 0.0;
            for w in walk.iter_mut() {
                acc += (rng.gen::<f64>() - 0.5) * 2.0 * self.phase_noise_rad_per_sample;
                *w = acc;
            }
        }
        walk
    }

    /// Fills a pre-sized slice with the [`draw_walk`] phase walk (same
    /// RNG consumption; the slice is zeroed first). Lets a batch carve
    /// per-frame walk segments out of one reusable flat buffer.
    // lint: hot-path
    pub(crate) fn fill_walk<R: Rng>(&self, rng: &mut R, out: &mut [f64]) {
        out.fill(0.0);
        if self.phase_noise_rad_per_sample > 0.0 {
            let mut acc = 0.0;
            for w in out.iter_mut() {
                acc += (rng.gen::<f64>() - 0.5) * 2.0 * self.phase_noise_rad_per_sample;
                *w = acc;
            }
        }
    }

    /// Deterministic half of [`apply`]: impairs a frame with a
    /// pre-drawn phase walk. Safe on worker threads.
    pub(crate) fn apply_with_walk(&self, frame: &mut Frame, walk: &[f64]) {
        if self.is_clean() {
            return;
        }
        for ant in frame.data.iter_mut() {
            for (i, s) in ant.iter_mut().enumerate() {
                let mut v = *s;
                if self.phase_noise_rad_per_sample > 0.0 {
                    v = v * Complex64::cis(walk[i]);
                }
                // lint: allow-float-eq(exact-zero config disables IQ mixing)
                if self.iq_gain_mismatch != 0.0 || self.iq_phase_skew_rad != 0.0 {
                    // Q rail sees gain (1+g) and a skewed mixing angle.
                    let i_rail = v.re;
                    let q_rail = (1.0 + self.iq_gain_mismatch)
                        * (v.im * self.iq_phase_skew_rad.cos()
                            + v.re * self.iq_phase_skew_rad.sin());
                    v = Complex64::new(i_rail, q_rail);
                }
                if self.adc_bits > 0 {
                    v = Complex64::new(
                        quantize(v.re, self.adc_bits, self.adc_full_scale),
                        quantize(v.im, self.adc_bits, self.adc_full_scale),
                    );
                }
                *s = v;
            }
        }
    }
}

/// Hard-clips every I/Q rail of a frame at ±`full_scale` \[√mW\] —
/// an ADC driven into saturation by a strong in-band signal. Unlike
/// [`Impairments::apply`] this is not part of a front-end profile; it
/// is the per-frame seam the fault-injection layer (`ros-fault`
/// `AdcSaturation`) clips through. Deterministic and in-place, so it
/// composes with pre-drawn noise packets without touching any RNG.
pub fn saturate_frame(frame: &mut Frame, full_scale: f64) {
    let fs = full_scale.max(0.0);
    for ant in frame.data.iter_mut() {
        for s in ant.iter_mut() {
            *s = Complex64::new(s.re.clamp(-fs, fs), s.im.clamp(-fs, fs));
        }
    }
}

/// Mid-rise uniform quantizer with clipping at ±`full_scale`.
fn quantize(x: f64, bits: u32, full_scale: f64) -> f64 {
    debug_assert!(full_scale > 0.0);
    let levels = (1u64 << bits).as_f64();
    let step = 2.0 * full_scale / levels;
    let clipped = x.clamp(-full_scale, full_scale - step);
    ((clipped / step).floor() + 0.5) * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::RadarArray;
    use crate::chirp::ChirpConfig;
    use crate::echo::{Echo, Pose};
    use crate::frontend::synthesize_frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ros_em::radar_eq::RadarLinkBudget;
    use ros_em::Vec3;

    fn frame(seed: u64) -> Frame {
        let c = ChirpConfig::ti_default();
        let a = RadarArray::ti_default();
        let b = RadarLinkBudget::ti_eval();
        let mut rng = StdRng::seed_from_u64(seed);
        let echo = Echo::new(
            Vec3::new(0.0, 3.0, 0.0),
            Complex64::from_polar(10f64.powf(-35.0 / 20.0), 0.4),
        );
        synthesize_frame(&c, &a, &b, Pose::side_looking(Vec3::ZERO), &[echo], &mut rng)
    }

    #[test]
    fn clean_profile_is_identity() {
        let mut f = frame(1);
        let orig = f.data.clone();
        let mut rng = StdRng::seed_from_u64(2);
        Impairments::default().apply(&mut f, &mut rng);
        assert_eq!(f.data, orig);
    }

    #[test]
    fn saturate_frame_clips_both_rails() {
        let mut f = frame(11);
        let fs = 1e-5;
        saturate_frame(&mut f, fs);
        for ant in &f.data {
            for s in ant {
                assert!(s.re.abs() <= fs && s.im.abs() <= fs);
            }
        }
        // Samples already inside the rails are untouched.
        let mut g = frame(11);
        let wide = 1e6;
        let orig = g.data.clone();
        saturate_frame(&mut g, wide);
        assert_eq!(g.data, orig);
    }

    #[test]
    fn walk_into_matches_direct_draw() {
        for imp in [
            Impairments::eval_board(),
            Impairments::default(),
            Impairments {
                adc_bits: 8,
                ..Default::default()
            },
        ] {
            let direct = imp.draw_walk(256, &mut StdRng::seed_from_u64(33));
            let mut rng = StdRng::seed_from_u64(33);
            let mut out = vec![5.0; 3]; // dirty, wrong length
            out.clear();
            out.resize(256, 0.0);
            imp.fill_walk(&mut rng, &mut out);
            assert_eq!(direct.len(), out.len());
            for (a, b) in direct.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Both must leave the RNG at the same point.
            let mut rng2 = StdRng::seed_from_u64(33);
            let _ = imp.draw_walk(256, &mut rng2);
            assert_eq!(rng.gen::<u64>(), rng2.gen::<u64>());
        }
    }

    #[test]
    fn quantizer_properties() {
        // Monotone, bounded error, symmetric range.
        let bits = 8;
        let fs = 1.0;
        let step = 2.0 / 256.0;
        let mut prev = f64::NEG_INFINITY;
        for i in -120..120 {
            let x = i as f64 / 100.0;
            let q = quantize(x, bits, fs);
            assert!(q >= prev - 1e-12);
            prev = q;
            if x.abs() < fs - step {
                assert!((q - x).abs() <= step / 2.0 + 1e-12, "x={x} q={q}");
            }
        }
        // Clipping.
        assert!(quantize(5.0, bits, fs) < fs);
        assert!(quantize(-5.0, bits, fs) >= -fs);
    }

    #[test]
    fn quantization_noise_shrinks_with_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut err = |bits: u32| {
            let mut total = 0.0;
            for _ in 0..2000 {
                let x: f64 = (rng.gen::<f64>() - 0.5) * 1.6;
                let e = quantize(x, bits, 1.0) - x;
                total += e * e;
            }
            total
        };
        let e8 = err(8);
        let e12 = err(12);
        assert!(e12 < e8 / 100.0, "8-bit {e8}, 12-bit {e12}");
    }

    #[test]
    fn phase_noise_preserves_power() {
        let mut f = frame(4);
        let p_before: f64 = f.data[0].iter().map(|s| s.norm_sqr()).sum();
        let mut rng = StdRng::seed_from_u64(5);
        Impairments {
            phase_noise_rad_per_sample: 0.01,
            ..Default::default()
        }
        .apply(&mut f, &mut rng);
        let p_after: f64 = f.data[0].iter().map(|s| s.norm_sqr()).sum();
        assert!((p_before - p_after).abs() < 1e-9 * p_before);
    }

    #[test]
    fn phase_noise_common_across_antennas() {
        // Same walk on every antenna ⇒ antenna phase *differences*
        // (the AoA information) survive.
        let mut f = frame(6);
        let before: Vec<f64> = (0..f.n_samples())
            .map(|i| (f.data[1][i] * f.data[0][i].conj()).arg())
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        Impairments {
            phase_noise_rad_per_sample: 0.02,
            ..Default::default()
        }
        .apply(&mut f, &mut rng);
        let after: Vec<f64> = (0..f.n_samples())
            .map(|i| (f.data[1][i] * f.data[0][i].conj()).arg())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9);
        }
    }

    #[test]
    fn eval_board_profile_degrades_mildly() {
        // A strong beat tone must survive the eval-board profile with
        // most of its coherent energy.
        let c = ChirpConfig::ti_default();
        let mut f = frame(8);
        let mut rng = StdRng::seed_from_u64(9);
        let tone = |fr: &Frame| {
            let fb = c.beat_frequency_hz(3.0);
            ros_dsp::goertzel::single_bin(&fr.data[0], fb / c.sample_rate_hz).abs()
        };
        let before = tone(&f);
        Impairments::eval_board().apply(&mut f, &mut rng);
        let after = tone(&f);
        let loss_db = 20.0 * (before / after).log10();
        assert!(loss_db < 1.5, "impairment loss {loss_db:.2} dB");
        assert!(loss_db > -1.5);
    }
}
