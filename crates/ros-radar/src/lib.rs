#![warn(missing_docs)]

//! # ros-radar — FMCW automotive radar simulator
//!
//! A software model of the TI IWR1443-class evaluation radar the paper
//! uses (§3.2, §7.1): it synthesizes the dechirped intermediate-
//! frequency (IF) samples every scatterer in the scene would produce,
//! adds link-budget-derived thermal noise, and implements the standard
//! processing chain — range FFT, angle-of-arrival beamforming, CFAR
//! detection — plus the "spotlight" beamforming RSS measurement the
//! RoS decoder relies on (§6).
//!
//! ## Signal conventions
//!
//! * An [`Echo`] carries the absolute scatterer position and the
//!   complex received *amplitude* at the reference antenna, in √mW:
//!   `|amp|²` is the received power in mW at full Rx gain, as computed
//!   by the scene layer from the radar equation. The propagation phase
//!   `e^{−j4πd/λ}` is included by the scene.
//! * The radar adds only what the antenna array geometry contributes:
//!   the beat frequency from range and the per-antenna phase from the
//!   angle of arrival (paper Eq. 2).
//! * The radar is **side-looking**: boresight is world +y, and azimuth
//!   is measured from boresight, positive toward +x (the direction of
//!   vehicle travel).

pub mod array;
pub mod chirp;
pub mod doppler;
pub mod echo;
pub mod frontend;
pub mod impairments;
pub mod pointcloud;
pub mod processing;
pub mod radar;
pub mod tracker;

pub use array::RadarArray;
pub use chirp::ChirpConfig;
pub use echo::Echo;
pub use pointcloud::{PointCloud, RadarPoint};
pub use radar::{FmcwRadar, RadarMode};
