//! Radar point clouds: per-frame detections and multi-frame merging.
//!
//! §6: *"for each radar frame, RoS uses the standard processing flow …
//! to generate a point cloud representing the dominant reflectors
//! visible to the radar. After all frames are processed, RoS merges
//! their point clouds based on the relative radar locations."*

use crate::echo::Pose;
use ros_em::Vec3;

/// One detected reflecting point, in the radar's local polar frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarPoint {
    /// Slant range \[m\].
    pub range_m: f64,
    /// Azimuth from boresight \[rad\].
    pub azimuth_rad: f64,
    /// Received power \[mW\] after processing.
    pub power_mw: f64,
}

impl RadarPoint {
    /// Received signal strength \[dBm\].
    pub fn rss_dbm(&self) -> f64 {
        10.0 * self.power_mw.max(1e-300).log10()
    }

    /// Projects the point into the world frame given the radar pose
    /// (side-looking convention: boresight +y).
    pub fn to_world(&self, pose: &Pose) -> Vec3 {
        let a = self.azimuth_rad + pose.yaw;
        Vec3::new(
            pose.pos.x + self.range_m * a.sin(),
            pose.pos.y + self.range_m * a.cos(),
            pose.pos.z,
        )
    }
}

/// A multi-frame, ego-motion-compensated point cloud in world
/// coordinates, with per-point power.
#[derive(Clone, Debug, Default)]
pub struct PointCloud {
    /// World-frame points.
    pub points: Vec<Vec3>,
    /// Per-point power \[mW\].
    pub powers: Vec<f64>,
}

impl PointCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are present.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds one frame's detections, projecting them with the frame's
    /// *believed* pose (ground truth or drifted — tracking error enters
    /// exactly here, Fig. 16d).
    pub fn add_frame(&mut self, detections: &[RadarPoint], believed_pose: &Pose) {
        for d in detections {
            self.points.push(d.to_world(believed_pose));
            self.powers.push(d.power_mw);
        }
    }

    /// The points projected onto the road plane, as `[x, y]` pairs for
    /// the DBSCAN stage.
    pub fn xy(&self) -> Vec<[f64; 2]> {
        self.points.iter().map(|p| [p.x, p.y]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_conversion() {
        let p = RadarPoint {
            range_m: 3.0,
            azimuth_rad: 0.0,
            power_mw: 1e-6,
        };
        assert!((p.rss_dbm() - (-60.0)).abs() < 1e-9);
    }

    #[test]
    fn world_projection_boresight() {
        let p = RadarPoint {
            range_m: 5.0,
            azimuth_rad: 0.0,
            power_mw: 1.0,
        };
        let pose = Pose::side_looking(Vec3::new(1.0, 2.0, 0.5));
        let w = p.to_world(&pose);
        assert!((w.x - 1.0).abs() < 1e-12);
        assert!((w.y - 7.0).abs() < 1e-12);
        assert!((w.z - 0.5).abs() < 1e-12);
    }

    #[test]
    fn world_projection_angled() {
        let p = RadarPoint {
            range_m: 2.0,
            azimuth_rad: std::f64::consts::FRAC_PI_2, // toward +x
            power_mw: 1.0,
        };
        let pose = Pose::side_looking(Vec3::ZERO);
        let w = p.to_world(&pose);
        assert!((w.x - 2.0).abs() < 1e-12);
        assert!(w.y.abs() < 1e-12);
    }

    #[test]
    fn projection_roundtrips_azimuth() {
        let pose = Pose::side_looking(Vec3::new(-3.0, 0.0, 0.0));
        let p = RadarPoint {
            range_m: 4.0,
            azimuth_rad: 0.35,
            power_mw: 1.0,
        };
        let w = p.to_world(&pose);
        assert!((pose.azimuth_to(w) - 0.35).abs() < 1e-12);
        assert!((pose.range_to(w) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cloud_accumulates_frames() {
        let mut cloud = PointCloud::new();
        assert!(cloud.is_empty());
        let pose1 = Pose::side_looking(Vec3::ZERO);
        let pose2 = Pose::side_looking(Vec3::new(1.0, 0.0, 0.0));
        let det = [RadarPoint {
            range_m: 3.0,
            azimuth_rad: 0.0,
            power_mw: 0.5,
        }];
        cloud.add_frame(&det, &pose1);
        cloud.add_frame(&det, &pose2);
        assert_eq!(cloud.len(), 2);
        // Same local detection, different poses ⇒ different world points.
        assert!((cloud.points[0].x - 0.0).abs() < 1e-12);
        assert!((cloud.points[1].x - 1.0).abs() < 1e-12);
        let xy = cloud.xy();
        assert_eq!(xy.len(), 2);
        assert_eq!(xy[1], [1.0, 3.0]);
    }
}
