//! Frame processing: range FFT, CFAR detection, AoA estimation.
//!
//! Implements the §3.2 flow: an FFT over the IF samples resolves
//! range (Eq. 3); beamforming across the Rx antennas resolves the
//! angle of arrival (Eq. 4); CFAR keeps prominent reflectors. The
//! output is the per-frame point list that §6's multi-frame pipeline
//! consumes.

use crate::array::RadarArray;
use crate::chirp::ChirpConfig;
use crate::frontend::Frame;
use crate::pointcloud::RadarPoint;
use ros_dsp::cfar::{ca_cfar, ca_cfar_into, CfarParams, Detection};
use ros_dsp::fft::{fft_in_place, FftPlan};
use ros_dsp::peaks::{find_peaks, find_peaks_into, Peak, PeakParams};
use ros_dsp::window::WindowTable;
use ros_dsp::PlanCache;
use ros_em::Complex64;
use ros_em::units::cast::{self, AsF64};

/// Azimuth search grid half-width \[rad\] (the radar antenna FoV).
pub(crate) const AOA_GRID_HALF_RAD: f64 = 1.2;

/// Azimuth grid step \[rad\] (≈0.6°).
pub(crate) const AOA_GRID_STEP_RAD: f64 = 0.01;

/// Per-antenna normalized range spectra: `out[k][bin] = FFT(s_k)/N`.
///
/// Direct reference implementation; the batch/steady-state pipeline
/// uses the planned [`range_spectra_into`] twin, which is pinned
/// bit-identical to this one.
pub fn range_spectra(frame: &Frame) -> Vec<Vec<Complex64>> {
    frame
        .data
        .iter()
        .map(|ant| {
            let mut buf = ant.clone();
            // Power-of-two guaranteed by the default config (256); pad
            // defensively otherwise.
            let n = buf.len().next_power_of_two();
            buf.resize(n, Complex64::ZERO);
            fft_in_place(&mut buf);
            let scale = 1.0 / ant.len().as_f64();
            buf.iter().map(|&c| c * scale).collect()
        })
        .collect()
}

/// Scratch-buffer twin of [`range_spectra`]: identical spectra written
/// into `out` via a precomputed [`FftPlan`] (which must be sized for
/// the frame's zero-padded length, `n_samples.next_power_of_two()`).
/// Allocation-free once the rows have grown to capacity.
// lint: hot-path
pub fn range_spectra_into(frame: &Frame, plan: &FftPlan, out: &mut Vec<Vec<Complex64>>) {
    let k_rx = frame.data.len();
    out.truncate(k_rx);
    while out.len() < k_rx {
        out.push(Vec::default());
    }
    for (ant, row) in frame.data.iter().zip(out.iter_mut()) {
        row.clear();
        row.extend_from_slice(ant);
        row.resize(plan.len(), Complex64::ZERO);
        plan.process_forward(row);
        let scale = 1.0 / ant.len().as_f64();
        for c in row.iter_mut() {
            *c = *c * scale;
        }
    }
}

/// Non-coherently integrated range power profile \[mW per bin\],
/// averaged over antennas.
pub fn range_power_profile(spectra: &[Vec<Complex64>]) -> Vec<f64> {
    let n = spectra[0].len();
    let k = spectra.len().as_f64();
    (0..n)
        .map(|i| spectra.iter().map(|s| s[i].norm_sqr()).sum::<f64>() / k)
        .collect()
}

/// Scratch-buffer twin of [`range_power_profile`]: identical profile
/// written into `out` (cleared first).
// lint: hot-path
pub fn range_power_profile_into(spectra: &[Vec<Complex64>], out: &mut Vec<f64>) {
    out.clear();
    let n = spectra[0].len();
    let k = spectra.len().as_f64();
    for i in 0..n {
        out.push(spectra.iter().map(|s| s[i].norm_sqr()).sum::<f64>() / k);
    }
}

/// Beamforming pseudo-spectrum at one range bin: power versus azimuth
/// over the AoA grid. Returns `(azimuths, powers)`.
pub fn aoa_spectrum(
    spectra: &[Vec<Complex64>],
    bin: usize,
    array: &RadarArray,
    lambda_m: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n_az = cast::floor_usize(2.0 * AOA_GRID_HALF_RAD / AOA_GRID_STEP_RAD) + 1;
    let mut azs = Vec::with_capacity(n_az);
    let mut pws = Vec::with_capacity(n_az);
    for i in 0..n_az {
        let az = -AOA_GRID_HALF_RAD + i.as_f64() * AOA_GRID_STEP_RAD;
        let mut y = Complex64::ZERO;
        for (k, s) in spectra.iter().enumerate() {
            let w = Complex64::cis(-array.steering_phase(k, az, lambda_m));
            y += w * s[bin];
        }
        azs.push(az);
        pws.push((y / spectra.len().as_f64()).norm_sqr());
    }
    (azs, pws)
}

/// Scratch-buffer twin of [`aoa_spectrum`]: identical `(azimuths,
/// powers)` grids written into `azs`/`pws` (cleared first).
// lint: hot-path
pub fn aoa_spectrum_into(
    spectra: &[Vec<Complex64>],
    bin: usize,
    array: &RadarArray,
    lambda_m: f64,
    azs: &mut Vec<f64>,
    pws: &mut Vec<f64>,
) {
    azs.clear();
    pws.clear();
    let n_az = cast::floor_usize(2.0 * AOA_GRID_HALF_RAD / AOA_GRID_STEP_RAD) + 1;
    for i in 0..n_az {
        let az = -AOA_GRID_HALF_RAD + i.as_f64() * AOA_GRID_STEP_RAD;
        let mut y = Complex64::ZERO;
        for (k, s) in spectra.iter().enumerate() {
            let w = Complex64::cis(-array.steering_phase(k, az, lambda_m));
            y += w * s[bin];
        }
        azs.push(az);
        pws.push((y / spectra.len().as_f64()).norm_sqr());
    }
}

/// Reusable scratch arena for [`detect_points_with`]: the plan cache
/// (FFT plan per padded frame length, window table for the spotlight)
/// plus every intermediate buffer of the detect chain. One per worker
/// or per run; steady-state frames allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct DetectScratch {
    plans: PlanCache,
    bufs: DetectBufs,
}

impl DetectScratch {
    /// The scratch's plan cache, for resolving additional plans (e.g.
    /// the spotlight window table) in a prologue.
    pub fn plans(&mut self) -> &mut PlanCache {
        &mut self.plans
    }
}

/// The non-plan working buffers of the detect chain.
#[derive(Clone, Debug, Default)]
struct DetectBufs {
    spectra: Vec<Vec<Complex64>>,
    profile: Vec<f64>,
    detections: Vec<Detection>,
    azs: Vec<f64>,
    pws: Vec<f64>,
    peaks: Vec<Peak>,
}

/// Scratch-arena twin of [`detect_points`]: identical points written
/// into `out`. Resolves the frame's FFT plan from the scratch's cache
/// (allocating on first use only), then runs the allocation-free
/// [`detect_points_core`] kernel.
pub fn detect_points_with(
    frame: &Frame,
    chirp: &ChirpConfig,
    array: &RadarArray,
    cfar: &CfarParams,
    max_targets_per_bin: usize,
    scratch: &mut DetectScratch,
    out: &mut Vec<RadarPoint>,
) {
    let n_fft = frame.n_samples().next_power_of_two();
    let DetectScratch { plans, bufs } = scratch;
    let plan = plans.fft(n_fft);
    detect_points_core(frame, chirp, array, cfar, max_targets_per_bin, plan, bufs, out);
    ros_obs::count("radar.cfar_detections", bufs.detections.len());
}

/// The steady-state detect kernel: range FFT → CFAR → AoA sweep with
/// every intermediate in a reusable buffer. Mirrors [`detect_points`]
/// operation-for-operation, so the output is bit-identical.
// lint: hot-path
fn detect_points_core(
    frame: &Frame,
    chirp: &ChirpConfig,
    array: &RadarArray,
    cfar: &CfarParams,
    max_targets_per_bin: usize,
    plan: &FftPlan,
    bufs: &mut DetectBufs,
    out: &mut Vec<RadarPoint>,
) {
    out.clear();
    let DetectBufs {
        spectra,
        profile,
        detections,
        azs,
        pws,
        peaks,
    } = bufs;
    range_spectra_into(frame, plan, spectra);
    range_power_profile_into(spectra, profile);
    // Only the first half of the spectrum is physical (positive beat).
    let half = profile.len() / 2;
    ca_cfar_into(&profile[..half], cfar, detections);

    let lambda = chirp.wavelength_m();
    for det in detections.iter() {
        let range = chirp.bin_to_range_m(det.index, spectra[0].len());
        if range < 0.3 {
            continue; // direct leakage region
        }
        aoa_spectrum_into(spectra, det.index, array, lambda, azs, pws);
        find_peaks_into(
            pws,
            &PeakParams {
                min_separation: cast::floor_usize(0.25 / AOA_GRID_STEP_RAD),
                ..Default::default()
            },
            peaks,
        );
        if peaks.is_empty() {
            continue;
        }
        let strongest = peaks[0].value;
        for p in peaks.iter().take(max_targets_per_bin) {
            if p.value < strongest / 4.0 {
                break; // >6 dB below the bin's dominant target
            }
            out.push(RadarPoint {
                range_m: range,
                azimuth_rad: azs[p.index],
                power_mw: p.value,
            });
        }
    }
}

/// Detects prominent reflectors in one frame.
///
/// Range detection uses CA-CFAR on the integrated profile; each
/// detected range bin is then swept in angle, keeping up to
/// `max_targets_per_bin` beamforming peaks within 6 dB of the bin's
/// strongest.
pub fn detect_points(
    frame: &Frame,
    chirp: &ChirpConfig,
    array: &RadarArray,
    cfar: &CfarParams,
    max_targets_per_bin: usize,
) -> Vec<RadarPoint> {
    let spectra = range_spectra(frame);
    let profile = range_power_profile(&spectra);
    // Only the first half of the spectrum is physical (positive beat).
    let half = profile.len() / 2;
    let detections = ca_cfar(&profile[..half], cfar);
    ros_obs::count("radar.cfar_detections", detections.len());

    let lambda = chirp.wavelength_m();
    let mut points = Vec::new();
    for det in detections {
        let range = chirp.bin_to_range_m(det.index, spectra[0].len());
        if range < 0.3 {
            continue; // direct leakage region
        }
        let (azs, pws) = aoa_spectrum(&spectra, det.index, array, lambda);
        let peaks = find_peaks(
            &pws,
            &PeakParams {
                min_separation: cast::floor_usize(0.25 / AOA_GRID_STEP_RAD),
                ..Default::default()
            },
        );
        if peaks.is_empty() {
            continue;
        }
        let strongest = peaks[0].value;
        for p in peaks.iter().take(max_targets_per_bin) {
            if p.value < strongest / 4.0 {
                break; // >6 dB below the bin's dominant target
            }
            points.push(RadarPoint {
                range_m: range,
                azimuth_rad: azs[p.index],
                power_mw: p.value,
            });
        }
    }
    points
}

/// "Spotlight" beamforming measurement (§6): the complex RSS amplitude
/// of a known target position, combining a single-bin DFT at the exact
/// (fractional) beat frequency with a matched steering vector.
///
/// Returns the complex amplitude in √mW; `|·|²` is the RSS in mW.
pub fn spotlight(
    frame: &Frame,
    chirp: &ChirpConfig,
    array: &RadarArray,
    target_world: ros_em::Vec3,
) -> Complex64 {
    let range = frame.pose.range_to(target_world);
    let az = frame.pose.azimuth_to(target_world);
    let f_beat = chirp.beat_frequency_hz(range);
    let w = std::f64::consts::TAU * f_beat / chirp.sample_rate_hz;
    let lambda = chirp.wavelength_m();

    // Hann-windowed single-bin DFT: −31 dB range sidelobes keep nearby
    // objects out of the measurement (amplitude calibration handled by
    // the goertzel helper).
    let cycles = w / std::f64::consts::TAU;
    let mut y = Complex64::ZERO;
    for (k, ant) in frame.data.iter().enumerate() {
        let acc =
            ros_dsp::goertzel::single_bin_windowed(ant, cycles, ros_dsp::window::Window::Hann);
        let steer = Complex64::cis(-array.steering_phase(k, az, lambda));
        y += steer * acc;
    }
    y / frame.n_rx().as_f64()
}

/// Scratch-arena twin of [`spotlight`]: identical complex amplitude,
/// but the Hann window comes from a precomputed [`WindowTable`] (sized
/// for the frame's sample count) instead of being regenerated per
/// call. Safe in `lint: hot-path` kernels.
// lint: hot-path
pub fn spotlight_with(
    frame: &Frame,
    chirp: &ChirpConfig,
    array: &RadarArray,
    target_world: ros_em::Vec3,
    table: &WindowTable,
) -> Complex64 {
    let range = frame.pose.range_to(target_world);
    let az = frame.pose.azimuth_to(target_world);
    let f_beat = chirp.beat_frequency_hz(range);
    let w = std::f64::consts::TAU * f_beat / chirp.sample_rate_hz;
    let lambda = chirp.wavelength_m();

    let cycles = w / std::f64::consts::TAU;
    let mut y = Complex64::ZERO;
    for (k, ant) in frame.data.iter().enumerate() {
        let acc = ros_dsp::goertzel::single_bin_windowed_table(ant, cycles, table);
        let steer = Complex64::cis(-array.steering_phase(k, az, lambda));
        y += steer * acc;
    }
    y / frame.n_rx().as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::{Echo, Pose};
    use crate::frontend::synthesize_frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ros_em::radar_eq::RadarLinkBudget;
    use ros_em::Vec3;

    fn capture(echoes: &[Echo], seed: u64) -> (Frame, ChirpConfig, RadarArray) {
        let c = ChirpConfig::ti_default();
        let a = RadarArray::ti_default();
        let b = RadarLinkBudget::ti_eval();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = synthesize_frame(&c, &a, &b, Pose::side_looking(Vec3::ZERO), echoes, &mut rng);
        (f, c, a)
    }

    fn strong_echo(pos: Vec3) -> Echo {
        // −30 dBm: far above the −62 dBm floor.
        Echo::new(pos, Complex64::from_polar(10f64.powf(-30.0 / 20.0), 1.0))
    }

    #[test]
    fn detects_single_target_range_and_angle() {
        let pos = Vec3::new(1.0, 3.0, 0.0);
        let (f, c, a) = capture(&[strong_echo(pos)], 11);
        let pts = detect_points(&f, &c, &a, &CfarParams::default(), 2);
        assert!(!pts.is_empty(), "no detections");
        let best = pts
            .iter()
            .max_by(|x, y| x.power_mw.total_cmp(&y.power_mw))
            .unwrap();
        let true_range = pos.norm();
        let true_az = (1.0f64).atan2(3.0);
        assert!(
            (best.range_m - true_range).abs() < 2.0 * c.range_resolution_m(),
            "range {} vs {}",
            best.range_m,
            true_range
        );
        assert!(
            (best.azimuth_rad - true_az).abs() < 0.1,
            "az {} vs {}",
            best.azimuth_rad,
            true_az
        );
    }

    #[test]
    fn detects_two_separated_targets() {
        let p1 = Vec3::new(-1.0, 2.5, 0.0);
        let p2 = Vec3::new(1.5, 4.5, 0.0);
        let (f, c, a) = capture(&[strong_echo(p1), strong_echo(p2)], 12);
        let pts = detect_points(&f, &c, &a, &CfarParams::default(), 2);
        let found1 = pts
            .iter()
            .any(|p| (p.range_m - p1.norm()).abs() < 0.15 && (p.azimuth_rad + 0.38).abs() < 0.15);
        let found2 = pts
            .iter()
            .any(|p| (p.range_m - p2.norm()).abs() < 0.15 && (p.azimuth_rad - 0.32).abs() < 0.15);
        assert!(found1 && found2, "points: {pts:?}");
    }

    #[test]
    fn no_detections_on_noise() {
        let (f, c, a) = capture(&[], 13);
        let pts = detect_points(&f, &c, &a, &CfarParams::default(), 2);
        assert!(pts.len() <= 1, "false alarms: {pts:?}");
    }

    #[test]
    fn detected_power_matches_echo_power() {
        let pos = Vec3::new(0.0, 3.0, 0.0);
        let (f, c, a) = capture(&[strong_echo(pos)], 14);
        let pts = detect_points(&f, &c, &a, &CfarParams::default(), 1);
        let best = pts
            .iter()
            .max_by(|x, y| x.power_mw.total_cmp(&y.power_mw))
            .unwrap();
        // Processing is calibrated: detected RSS ≈ echo power (−30 dBm)
        // up to a systematic ~2 dB window/scalloping loss, with a few
        // tenths of a dB of noise-realization spread on top.
        assert!(
            (best.rss_dbm() - (-30.0)).abs() < 2.5,
            "RSS {} dBm",
            best.rss_dbm()
        );
    }

    #[test]
    fn spotlight_recovers_complex_amplitude() {
        let pos = Vec3::new(0.8, 2.7, 0.0);
        let amp = Complex64::from_polar(10f64.powf(-35.0 / 20.0), 0.7);
        let (f, c, a) = capture(&[Echo::new(pos, amp)], 15);
        let y = spotlight(&f, &c, &a, pos);
        // The measurement includes the radar's own two-way antenna
        // pattern at the target azimuth.
        let az = (0.8f64).atan2(2.7);
        let g = crate::frontend::radar_pattern(az);
        let expected = amp.abs() * g * g;
        let err_db = 20.0 * (y.abs() / expected).log10();
        assert!(err_db.abs() < 1.0, "amplitude error {err_db} dB");
    }

    #[test]
    fn spotlight_rejects_off_target_energy() {
        // A strong interferer far from the spotlighted position should
        // contribute little.
        let target = Vec3::new(0.0, 3.0, 0.0);
        let interferer = Vec3::new(-2.0, 5.0, 0.0);
        let amp_t = Complex64::from_polar(10f64.powf(-45.0 / 20.0), 0.0);
        let amp_i = Complex64::from_polar(10f64.powf(-25.0 / 20.0), 0.0);
        let (f, c, a) = capture(&[Echo::new(target, amp_t), Echo::new(interferer, amp_i)], 16);
        let y = spotlight(&f, &c, &a, target);
        let err_db = 20.0 * (y.abs() / amp_t.abs()).log10();
        assert!(err_db.abs() < 3.0, "spotlight leakage {err_db} dB");
    }

    #[test]
    fn planned_detect_chain_bit_identical_to_direct() {
        let p1 = Vec3::new(-1.0, 2.5, 0.0);
        let p2 = Vec3::new(1.5, 4.5, 0.0);
        let (f, c, a) = capture(&[strong_echo(p1), strong_echo(p2)], 21);

        // range_spectra_into vs range_spectra.
        let direct_spectra = range_spectra(&f);
        let plan = FftPlan::new(f.n_samples().next_power_of_two());
        let mut spectra = vec![vec![Complex64::new(3.0, 3.0); 2]; 9]; // dirty
        range_spectra_into(&f, &plan, &mut spectra);
        assert_eq!(direct_spectra.len(), spectra.len());
        for (da, sa) in direct_spectra.iter().zip(&spectra) {
            assert_eq!(da.len(), sa.len());
            for (d, s) in da.iter().zip(sa) {
                assert_eq!(d.re.to_bits(), s.re.to_bits());
                assert_eq!(d.im.to_bits(), s.im.to_bits());
            }
        }

        // profile / AoA twins.
        let direct_profile = range_power_profile(&direct_spectra);
        let mut profile = vec![7.0; 3];
        range_power_profile_into(&spectra, &mut profile);
        assert_eq!(direct_profile.len(), profile.len());
        for (d, p) in direct_profile.iter().zip(&profile) {
            assert_eq!(d.to_bits(), p.to_bits());
        }
        let lambda = c.wavelength_m();
        let (direct_azs, direct_pws) = aoa_spectrum(&direct_spectra, 12, &a, lambda);
        let (mut azs, mut pws) = (vec![1.0; 2], Vec::new());
        aoa_spectrum_into(&spectra, 12, &a, lambda, &mut azs, &mut pws);
        for (d, v) in direct_azs.iter().zip(&azs).chain(direct_pws.iter().zip(&pws)) {
            assert_eq!(d.to_bits(), v.to_bits());
        }

        // Whole chain through the scratch arena, reused across frames.
        let mut scratch = DetectScratch::default();
        let mut pts = Vec::new();
        for seed in [21u64, 22, 23] {
            let (f, c, a) = capture(&[strong_echo(p1), strong_echo(p2)], seed);
            let direct = detect_points(&f, &c, &a, &CfarParams::default(), 2);
            detect_points_with(&f, &c, &a, &CfarParams::default(), 2, &mut scratch, &mut pts);
            assert_eq!(direct.len(), pts.len());
            for (d, p) in direct.iter().zip(&pts) {
                assert_eq!(d.range_m.to_bits(), p.range_m.to_bits());
                assert_eq!(d.azimuth_rad.to_bits(), p.azimuth_rad.to_bits());
                assert_eq!(d.power_mw.to_bits(), p.power_mw.to_bits());
            }
        }
    }

    #[test]
    fn spotlight_with_table_bit_identical_to_direct() {
        let pos = Vec3::new(0.8, 2.7, 0.0);
        let amp = Complex64::from_polar(10f64.powf(-35.0 / 20.0), 0.7);
        let (f, c, a) = capture(&[Echo::new(pos, amp)], 15);
        let direct = spotlight(&f, &c, &a, pos);
        let table = WindowTable::new(ros_dsp::window::Window::Hann, f.n_samples());
        let with_table = spotlight_with(&f, &c, &a, pos, &table);
        assert_eq!(direct.re.to_bits(), with_table.re.to_bits());
        assert_eq!(direct.im.to_bits(), with_table.im.to_bits());
    }

    #[test]
    fn range_profile_has_power_at_target_bin() {
        let pos = Vec3::new(0.0, 4.0, 0.0);
        let (f, c, _) = capture(&[strong_echo(pos)], 17);
        let spectra = range_spectra(&f);
        let profile = range_power_profile(&spectra);
        let bin = c.range_to_bin(4.0, profile.len()).round() as usize;
        let peak_region: f64 = profile[bin.saturating_sub(1)..=bin + 1]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let far = profile[profile.len() / 4];
        assert!(peak_region > 100.0 * far);
    }
}
