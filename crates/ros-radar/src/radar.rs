//! The top-level radar facade.

use crate::array::RadarArray;
use crate::chirp::ChirpConfig;
use crate::echo::{Echo, Pose};
use crate::frontend::{synthesize_frame, Frame, SynthScratch};
use crate::impairments::Impairments;
use crate::pointcloud::RadarPoint;
use crate::processing;
use rand::Rng;
use ros_dsp::cfar::CfarParams;
use ros_em::jones::Polarization;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::units::cast::AsF64;
use ros_em::{Complex64, Vec3};

/// Which Tx port the radar fires (§7.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RadarMode {
    /// Stock Tx: co-polarized Tx/Rx — used for object detection.
    Native,
    /// Rotated Tx: Tx orthogonal to Rx — used for tag decoding.
    PolarizationSwitched,
}

impl RadarMode {
    /// The (tx, rx) polarization pair of this mode given the array's
    /// native polarization.
    pub fn polarizations(self, native: Polarization) -> (Polarization, Polarization) {
        match self {
            // Both ports native: clutter (co-pol) comes back strongly.
            RadarMode::Native => (native, native),
            // Tx rotated 90°: the Rx stays native, so only reflectors
            // that switch polarization (the PSVAA tag) return strongly.
            RadarMode::PolarizationSwitched => (native.orthogonal(), native),
        }
    }
}

/// Reusable per-batch scratch arena for [`FmcwRadar::capture_batch_into`]:
/// the pre-drawn flat noise/phase-walk buffers plus one
/// [`SynthScratch`] per worker thread. A long-lived pipeline keeps one
/// of these per run so steady-state frames allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct CaptureScratch {
    noise: Vec<Complex64>,
    walks: Vec<f64>,
    synth: Vec<SynthScratch>,
}

/// A complete FMCW radar instance.
#[derive(Clone, Debug)]
pub struct FmcwRadar {
    /// Chirp/frame configuration.
    pub chirp: ChirpConfig,
    /// Antenna array geometry.
    pub array: RadarArray,
    /// Link budget (drives the noise model).
    pub budget: RadarLinkBudget,
    /// CFAR configuration for detection.
    pub cfar: CfarParams,
    /// Front-end impairment profile (clean by default).
    pub impairments: Impairments,
}

impl FmcwRadar {
    /// The paper's TI evaluation radar.
    pub fn ti_eval() -> Self {
        FmcwRadar {
            chirp: ChirpConfig::ti_default(),
            array: RadarArray::ti_default(),
            budget: RadarLinkBudget::ti_eval(),
            cfar: CfarParams::default(),
            impairments: Impairments::default(),
        }
    }

    /// Captures one frame of IF data from the given echoes, applying
    /// the configured front-end impairments.
    pub fn capture<R: Rng>(&self, pose: Pose, echoes: &[Echo], rng: &mut R) -> Frame {
        ros_obs::count("radar.frames_synthesized", 1);
        let mut frame =
            synthesize_frame(&self.chirp, &self.array, &self.budget, pose, echoes, rng);
        self.impairments.apply(&mut frame, rng);
        frame
    }

    /// Captures a batch of frames, bit-identical to calling
    /// [`FmcwRadar::capture`] once per job in order.
    ///
    /// Convenience wrapper over [`FmcwRadar::capture_batch_with`] with
    /// a throwaway scratch arena; steady-state pipelines keep a
    /// [`CaptureScratch`] alive and call the `_with`/`_into` form so
    /// warm frames allocate nothing.
    pub fn capture_batch<R: Rng>(&self, jobs: &[(Pose, Vec<Echo>)], rng: &mut R) -> Vec<Frame> {
        let mut scratch = CaptureScratch::default();
        let mut out = Vec::new();
        self.capture_batch_with(jobs, rng, &mut scratch, &mut out);
        out
    }

    /// [`FmcwRadar::capture_batch_into`] plus the telemetry the legacy
    /// entry point always emitted (batch span + frame counter). Kept
    /// outside the hot-path kernel so the observability layer's own
    /// bookkeeping never counts against the zero-alloc budget.
    pub fn capture_batch_with<R: Rng>(
        &self,
        jobs: &[(Pose, Vec<Echo>)],
        rng: &mut R,
        scratch: &mut CaptureScratch,
        out: &mut Vec<Frame>,
    ) {
        let _span = ros_obs::span("radar.capture_batch");
        ros_obs::count("radar.frames_synthesized", jobs.len());
        self.capture_batch_into(jobs, rng, scratch, out);
    }

    /// Scratch-arena batch capture: writes one frame per job into
    /// `out`, bit-identical to the serial [`FmcwRadar::capture`] loop
    /// at any thread count.
    ///
    /// The RNG is consumed serially up front — per frame, the thermal
    /// noise draws then the impairment phase walk, exactly the order
    /// the serial loop uses — into flat segments of the scratch arena.
    /// The deterministic synthesis then fans out over
    /// [`ros_exec::par_for_each_mut`] with one [`SynthScratch`] per
    /// worker, so output frames (and every intermediate) depend only on
    /// the job order, never on thread scheduling.
    // lint: hot-path
    pub fn capture_batch_into<R: Rng>(
        &self,
        jobs: &[(Pose, Vec<Echo>)],
        rng: &mut R,
        scratch: &mut CaptureScratch,
        out: &mut Vec<Frame>,
    ) {
        let n = self.chirp.n_samples;
        let k_rx = self.array.n_rx;
        let n_jobs = jobs.len();
        out.truncate(n_jobs);
        while out.len() < n_jobs {
            out.push(Frame {
                data: Vec::default(),
                pose: jobs[out.len()].0,
            });
        }
        if n_jobs == 0 {
            return;
        }

        let clean = self.impairments.is_clean();
        let CaptureScratch {
            noise,
            walks,
            synth,
        } = scratch;
        noise.clear();
        noise.resize(n_jobs * k_rx * n, Complex64::ZERO);
        walks.clear();
        walks.resize(if clean { 0 } else { n_jobs * n }, 0.0);
        for i in 0..n_jobs {
            crate::frontend::fill_noise(rng, &mut noise[i * k_rx * n..(i + 1) * k_rx * n]);
            if !clean {
                self.impairments.fill_walk(rng, &mut walks[i * n..(i + 1) * n]);
            }
        }

        let want = ros_exec::threads().max(1);
        synth.truncate(want);
        while synth.len() < want {
            synth.push(SynthScratch::default());
        }

        let sigma = crate::frontend::per_sample_noise_sigma(&self.budget, &self.chirp, &self.array);
        let noise = &*noise;
        let walks = &*walks;
        ros_exec::par_for_each_mut(synth, out, |synth_scratch, i, frame| {
            let (pose, echoes) = &jobs[i];
            crate::frontend::synthesize_signal_into(
                &self.chirp,
                &self.array,
                *pose,
                echoes,
                synth_scratch,
                frame,
            );
            crate::frontend::add_noise_from_slice(
                frame,
                &noise[i * k_rx * n..(i + 1) * k_rx * n],
                sigma,
            );
            let walk = if clean { &[][..] } else { &walks[i * n..(i + 1) * n] };
            self.impairments.apply_with_walk(frame, walk);
        });
    }

    /// Detects prominent reflectors in a frame (local polar points).
    pub fn detect(&self, frame: &Frame) -> Vec<RadarPoint> {
        let pts = processing::detect_points(frame, &self.chirp, &self.array, &self.cfar, 2);
        ros_obs::hist("radar.points_per_frame", pts.len().as_f64());
        pts
    }

    /// Scratch-arena twin of [`FmcwRadar::detect`]: identical points
    /// written into `out`, with every intermediate (and the FFT plan)
    /// reused from `scratch` so steady-state frames allocate nothing.
    pub fn detect_with(
        &self,
        frame: &Frame,
        scratch: &mut processing::DetectScratch,
        out: &mut Vec<RadarPoint>,
    ) {
        processing::detect_points_with(frame, &self.chirp, &self.array, &self.cfar, 2, scratch, out);
        ros_obs::hist("radar.points_per_frame", out.len().as_f64());
    }

    /// Runs [`FmcwRadar::detect`] (range FFT + CFAR + AoA sweep) over
    /// a batch of frames in parallel. Detection is a pure function of
    /// each frame, so the output is identical to a serial loop.
    pub fn detect_batch(&self, frames: &[Frame]) -> Vec<Vec<RadarPoint>> {
        ros_exec::par_map(frames, |f| self.detect(f))
    }

    /// Spotlight-beamforms on a known world position, returning the
    /// complex RSS amplitude \[√mW\].
    pub fn spotlight(&self, frame: &Frame, target_world: Vec3) -> Complex64 {
        processing::spotlight(frame, &self.chirp, &self.array, target_world)
    }

    /// [`FmcwRadar::spotlight`] with a precomputed Hann window table
    /// (sized for the frame's sample count); bit-identical and safe in
    /// hot-path kernels.
    pub fn spotlight_with(
        &self,
        frame: &Frame,
        target_world: Vec3,
        table: &ros_dsp::window::WindowTable,
    ) -> Complex64 {
        processing::spotlight_with(frame, &self.chirp, &self.array, target_world, table)
    }

    /// The radar's decode-condition noise floor \[dBm\].
    pub fn noise_floor_dbm(&self) -> f64 {
        self.budget.noise_floor_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mode_polarizations() {
        let (tx, rx) = RadarMode::Native.polarizations(Polarization::V);
        assert_eq!((tx, rx), (Polarization::V, Polarization::V));
        let (tx, rx) = RadarMode::PolarizationSwitched.polarizations(Polarization::V);
        assert_eq!((tx, rx), (Polarization::H, Polarization::V));
    }

    #[test]
    fn end_to_end_capture_detect() {
        let radar = FmcwRadar::ti_eval();
        let mut rng = StdRng::seed_from_u64(99);
        let pos = Vec3::new(0.5, 3.5, 0.0);
        let echo = Echo::new(pos, Complex64::from_polar(10f64.powf(-35.0 / 20.0), 0.3));
        let frame = radar.capture(Pose::side_looking(Vec3::ZERO), &[echo], &mut rng);
        let pts = radar.detect(&frame);
        assert!(pts
            .iter()
            .any(|p| (p.range_m - pos.norm()).abs() < 0.15 && (p.rss_dbm() + 35.0).abs() < 3.0));
        let y = radar.spotlight(&frame, pos);
        assert!((20.0 * y.abs().log10() - (-35.0)).abs() < 2.0);
    }

    #[test]
    fn weak_target_below_floor_is_invisible() {
        let radar = FmcwRadar::ti_eval();
        let mut rng = StdRng::seed_from_u64(100);
        let pos = Vec3::new(0.0, 4.0, 0.0);
        // −75 dBm: 13 dB below the −62 dBm floor.
        let echo = Echo::new(pos, Complex64::from_polar(10f64.powf(-75.0 / 20.0), 0.0));
        let frame = radar.capture(Pose::side_looking(Vec3::ZERO), &[echo], &mut rng);
        let pts = radar.detect(&frame);
        assert!(
            !pts.iter()
                .any(|p| (p.range_m - 4.0).abs() < 0.2 && p.rss_dbm() > -70.0),
            "ghost detection of sub-floor target"
        );
    }

    #[test]
    fn capture_batch_matches_serial_captures() {
        for impairments in [Impairments::default(), Impairments::eval_board()] {
            let mut radar = FmcwRadar::ti_eval();
            radar.impairments = impairments;
            let jobs: Vec<(Pose, Vec<Echo>)> = (0..5)
                .map(|i| {
                    let x = -1.0 + 0.5 * i as f64;
                    let echo = Echo::new(
                        Vec3::new(x, 3.0, 0.0),
                        Complex64::from_polar(10f64.powf(-40.0 / 20.0), 0.1 * i as f64),
                    );
                    (Pose::side_looking(Vec3::ZERO), vec![echo])
                })
                .collect();
            let mut rng = StdRng::seed_from_u64(77);
            let serial: Vec<Frame> = jobs
                .iter()
                .map(|(pose, echoes)| radar.capture(*pose, echoes, &mut rng))
                .collect();
            let mut rng = StdRng::seed_from_u64(77);
            let batch = radar.capture_batch(&jobs, &mut rng);
            assert_eq!(serial.len(), batch.len());
            for (a, b) in serial.iter().zip(&batch) {
                for (ra, rb) in a.data.iter().zip(&b.data) {
                    for (sa, sb) in ra.iter().zip(rb) {
                        assert_eq!(sa.re.to_bits(), sb.re.to_bits());
                        assert_eq!(sa.im.to_bits(), sb.im.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn capture_batch_into_reuses_scratch_across_sizes_and_threads() {
        let mut radar = FmcwRadar::ti_eval();
        radar.impairments = Impairments::eval_board();
        let make_jobs = |count: usize| -> Vec<(Pose, Vec<Echo>)> {
            (0..count)
                .map(|i| {
                    let echo = Echo::new(
                        Vec3::new(-0.8 + 0.4 * i as f64, 3.2, 0.0),
                        Complex64::from_polar(10f64.powf(-38.0 / 20.0), 0.2 * i as f64),
                    );
                    (Pose::side_looking(Vec3::ZERO), vec![echo])
                })
                .collect()
        };
        // One scratch arena survives shrinking and growing batches at
        // several thread counts; every run must match the serial loop.
        let mut scratch = CaptureScratch::default();
        let mut out = Vec::new();
        for (n_threads, n_jobs) in [(1usize, 6usize), (2, 3), (8, 6), (2, 1)] {
            let _guard = ros_exec::ThreadGuard::pin(Some(n_threads));
            let mut rng = StdRng::seed_from_u64(1234);
            let serial: Vec<Frame> = make_jobs(n_jobs)
                .iter()
                .map(|(pose, echoes)| radar.capture(*pose, echoes, &mut rng))
                .collect();
            let mut rng = StdRng::seed_from_u64(1234);
            radar.capture_batch_into(&make_jobs(n_jobs), &mut rng, &mut scratch, &mut out);
            assert_eq!(out.len(), serial.len());
            for (a, b) in serial.iter().zip(&out) {
                for (ra, rb) in a.data.iter().zip(&b.data) {
                    for (sa, sb) in ra.iter().zip(rb) {
                        assert_eq!(sa.re.to_bits(), sb.re.to_bits());
                        assert_eq!(sa.im.to_bits(), sb.im.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn detect_batch_matches_serial_detect() {
        let radar = FmcwRadar::ti_eval();
        let mut rng = StdRng::seed_from_u64(42);
        let jobs: Vec<(Pose, Vec<Echo>)> = (0..4)
            .map(|i| {
                let echo = Echo::new(
                    Vec3::new(0.3 * i as f64, 3.5, 0.0),
                    Complex64::from_polar(10f64.powf(-35.0 / 20.0), 0.0),
                );
                (Pose::side_looking(Vec3::ZERO), vec![echo])
            })
            .collect();
        let frames = radar.capture_batch(&jobs, &mut rng);
        let serial: Vec<Vec<RadarPoint>> = frames.iter().map(|f| radar.detect(f)).collect();
        let batch = radar.detect_batch(&frames);
        assert_eq!(serial.len(), batch.len());
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b) {
                assert_eq!(pa.range_m.to_bits(), pb.range_m.to_bits());
                assert_eq!(pa.azimuth_rad.to_bits(), pb.azimuth_rad.to_bits());
                assert_eq!(pa.power_mw.to_bits(), pb.power_mw.to_bits());
            }
        }
    }

    #[test]
    fn noise_floor_accessor() {
        let radar = FmcwRadar::ti_eval();
        assert!((radar.noise_floor_dbm() - (-62.0)).abs() < 0.6);
    }
}
