//! α–β target tracking.
//!
//! §6 merges multi-frame point clouds *after the fact*; a deployed
//! reader also wants an online position estimate of each candidate
//! object while the vehicle approaches — both to steer the spotlight
//! beam early and to reject flicker detections. The classic α–β
//! filter (the fixed-gain steady state of a Kalman filter for
//! constant-velocity targets) is the standard automotive choice.
//!
//! State is tracked in the *world* frame, where roadside objects are
//! stationary and the estimate converges as `1/√n`.

use ros_em::Vec3;

/// A single-target α–β tracker over 2-D world positions.
#[derive(Clone, Debug)]
pub struct AlphaBetaTracker {
    /// Position-correction gain α ∈ (0, 1].
    pub alpha: f64,
    /// Velocity-correction gain β ∈ [0, 1).
    pub beta: f64,
    /// Association gate: measurements farther than this from the
    /// prediction are ignored \[m\].
    pub gate_m: f64,
    state: Option<TrackState>,
}

#[derive(Clone, Copy, Debug)]
struct TrackState {
    pos: Vec3,
    vel: Vec3,
    updates: usize,
    misses: usize,
}

impl AlphaBetaTracker {
    /// A tracker tuned for stationary roadside objects observed from a
    /// moving platform: strong position smoothing, weak velocity gain.
    pub fn roadside() -> Self {
        AlphaBetaTracker {
            alpha: 0.25,
            beta: 0.02,
            gate_m: 0.8,
            state: None,
        }
    }

    /// Current position estimate.
    pub fn position(&self) -> Option<Vec3> {
        self.state.map(|s| s.pos)
    }

    /// Current velocity estimate \[m/s\].
    pub fn velocity(&self) -> Option<Vec3> {
        self.state.map(|s| s.vel)
    }

    /// Number of accepted measurement updates.
    pub fn updates(&self) -> usize {
        self.state.map_or(0, |s| s.updates)
    }

    /// Consecutive gated-out (missed) updates.
    pub fn misses(&self) -> usize {
        self.state.map_or(0, |s| s.misses)
    }

    /// Advances the track by `dt` seconds and fuses a measurement if
    /// one is supplied and passes the gate. Returns `true` when the
    /// measurement was accepted.
    pub fn step(&mut self, dt: f64, measurement: Option<Vec3>) -> bool {
        match (&mut self.state, measurement) {
            (None, Some(m)) => {
                self.state = Some(TrackState {
                    pos: m,
                    vel: Vec3::ZERO,
                    updates: 1,
                    misses: 0,
                });
                true
            }
            (None, None) => false,
            (Some(s), meas) => {
                // Predict.
                let predicted = s.pos + s.vel * dt;
                s.pos = predicted;
                match meas {
                    Some(m) if predicted.distance(m) <= self.gate_m => {
                        let residual = m - predicted;
                        s.pos += residual * self.alpha;
                        if dt > 0.0 {
                            s.vel += residual * (self.beta / dt);
                        }
                        s.updates += 1;
                        s.misses = 0;
                        true
                    }
                    _ => {
                        s.misses += 1;
                        false
                    }
                }
            }
        }
    }

    /// True once the track has enough updates to trust (≥ `n`).
    pub fn confirmed(&self, n: usize) -> bool {
        self.updates() >= n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn initializes_on_first_measurement() {
        let mut t = AlphaBetaTracker::roadside();
        assert!(t.position().is_none());
        assert!(t.step(0.01, Some(Vec3::new(1.0, 2.0, 0.0))));
        assert_eq!(t.position().unwrap(), Vec3::new(1.0, 2.0, 0.0));
        assert_eq!(t.updates(), 1);
    }

    #[test]
    fn converges_on_noisy_stationary_target() {
        let truth = Vec3::new(0.0, 3.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = AlphaBetaTracker::roadside();
        for _ in 0..200 {
            let noisy = truth
                + Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 0.3,
                    (rng.gen::<f64>() - 0.5) * 0.3,
                    0.0,
                );
            t.step(0.05, Some(noisy));
        }
        let err = t.position().unwrap().distance(truth);
        assert!(err < 0.05, "converged to {err} m");
        // Velocity estimate stays near zero for a stationary target.
        assert!(t.velocity().unwrap().norm() < 0.5);
    }

    #[test]
    fn gate_rejects_outliers() {
        let mut t = AlphaBetaTracker::roadside();
        t.step(0.01, Some(Vec3::new(0.0, 3.0, 0.0)));
        // A detection from a different object 2 m away must not drag
        // the track.
        let accepted = t.step(0.01, Some(Vec3::new(2.0, 3.0, 0.0)));
        assert!(!accepted);
        assert_eq!(t.misses(), 1);
        assert!(t.position().unwrap().distance(Vec3::new(0.0, 3.0, 0.0)) < 0.01);
    }

    #[test]
    fn coasts_through_missed_frames() {
        let mut t = AlphaBetaTracker::roadside();
        // Constant-velocity target to build a velocity estimate.
        for i in 0..50 {
            let p = Vec3::new(0.1 * i as f64, 3.0, 0.0);
            t.step(0.1, Some(p));
        }
        let v = t.velocity().unwrap();
        assert!((v.x - 1.0).abs() < 0.3, "vx {}", v.x);
        // Coast 5 frames without measurements.
        let before = t.position().unwrap();
        for _ in 0..5 {
            t.step(0.1, None);
        }
        let after = t.position().unwrap();
        assert!(after.x > before.x + 0.3, "did not coast: {} -> {}", before.x, after.x);
        assert_eq!(t.misses(), 5);
    }

    #[test]
    fn no_measurement_on_empty_track_is_noop() {
        let mut t = AlphaBetaTracker::roadside();
        assert!(!t.step(0.1, None));
        assert!(t.position().is_none());
        assert_eq!(t.updates(), 0);
        assert_eq!(t.misses(), 0);
        assert!(!t.confirmed(1));
    }

    #[test]
    fn zero_dt_update_keeps_velocity_finite() {
        let mut t = AlphaBetaTracker::roadside();
        t.step(0.0, Some(Vec3::new(1.0, 2.0, 0.0)));
        // Second measurement at dt == 0: the β/dt velocity correction
        // is guarded, so velocity stays finite instead of going NaN.
        assert!(t.step(0.0, Some(Vec3::new(1.1, 2.0, 0.0))));
        let v = t.velocity().unwrap();
        assert!(v.x.is_finite() && v.y.is_finite());
        assert_eq!(v, Vec3::ZERO);
        // The position correction still applies.
        assert!(t.position().unwrap().x > 1.0);
    }

    #[test]
    fn measurement_exactly_at_gate_is_accepted() {
        let mut t = AlphaBetaTracker::roadside();
        t.step(0.1, Some(Vec3::new(0.0, 3.0, 0.0)));
        let gate = t.gate_m;
        // Distance equal to the gate is inside (`<=`), just past it
        // is outside.
        assert!(t.step(0.1, Some(Vec3::new(gate, 3.0, 0.0))));
        assert_eq!(t.misses(), 0);
        assert!(!t.step(0.1, Some(Vec3::new(gate * 3.0, 3.0, 0.0))));
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn confirmation_threshold() {
        let mut t = AlphaBetaTracker::roadside();
        for _ in 0..3 {
            t.step(0.01, Some(Vec3::new(1.0, 1.0, 0.0)));
        }
        assert!(t.confirmed(3));
        assert!(!t.confirmed(4));
    }
}
