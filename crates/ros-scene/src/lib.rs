#![warn(missing_docs)]

//! # ros-scene — roadside scene simulator for RoS
//!
//! Everything around the tag: the clutter objects of Fig. 11/13
//! (tripod, parking meter, street lamp, road sign, pedestrian, tree),
//! vehicle trajectories, self-tracking error injection (Fig. 16d), and
//! weather (Fig. 16c).
//!
//! The crate defines the [`Reflector`] trait — "given the radar
//! position and Tx/Rx polarizations, what echoes do you produce?" —
//! implemented here for clutter objects and in `ros-core` for the tag
//! itself (which needs the antenna physics).

pub mod objects;
pub mod reflector;
pub mod scenario;
pub mod tracking;
pub mod trajectory;
pub mod weather;

pub use objects::{ClutterObject, ObjectClass};
pub use scenario::ScenePreset;
pub use reflector::{EchoContext, Reflector};
pub use tracking::TrackingError;
pub use trajectory::Trajectory;
pub use weather::FogLevel;
