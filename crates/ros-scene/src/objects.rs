//! Roadside clutter objects (Fig. 11, Fig. 13).
//!
//! Each object is an extended scatterer: a cloud of point reflectors
//! with per-point random static phases (speckle) sharing the object's
//! total RCS and polarization behaviour. Class parameters encode the
//! paper's Fig. 13 measurements: background objects reject 16–19 dB of
//! cross-polarized energy and span class-dependent point-cloud sizes.

use crate::reflector::{EchoContext, Reflector, SceneEcho};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ros_em::jones::{JonesMatrix, Polarization};
use ros_em::{Complex64, Vec3};
use ros_em::units::cast::AsF64;
use ros_em::units::Db;

/// Clutter object classes evaluated in §7.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ObjectClass {
    /// Camera/radar tripod (the Fig. 11 second object).
    Tripod,
    /// Parking meter.
    ParkingMeter,
    /// Street lamp pole.
    StreetLamp,
    /// Conventional metal road sign.
    RoadSign,
    /// Pedestrian.
    Pedestrian,
    /// Tree (trunk + canopy).
    Tree,
    /// Highway guardrail segment (long, strong, co-polarized).
    Guardrail,
    /// Parked car (very strong, extended).
    ParkedCar,
}

impl ObjectClass {
    /// The classes evaluated in the paper's Fig. 13, in x-axis order
    /// (minus the tag).
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Tripod,
        ObjectClass::ParkingMeter,
        ObjectClass::StreetLamp,
        ObjectClass::RoadSign,
        ObjectClass::Pedestrian,
        ObjectClass::Tree,
    ];

    /// Every modelled class, including the extended roadway set.
    pub const EXTENDED: [ObjectClass; 8] = [
        ObjectClass::Tripod,
        ObjectClass::ParkingMeter,
        ObjectClass::StreetLamp,
        ObjectClass::RoadSign,
        ObjectClass::Pedestrian,
        ObjectClass::Tree,
        ObjectClass::Guardrail,
        ObjectClass::ParkedCar,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ObjectClass::Tripod => "Tripod",
            ObjectClass::ParkingMeter => "Meter",
            ObjectClass::StreetLamp => "Lamp",
            ObjectClass::RoadSign => "Sign",
            ObjectClass::Pedestrian => "Human",
            ObjectClass::Tree => "Tree",
            ObjectClass::Guardrail => "Guardrail",
            ObjectClass::ParkedCar => "ParkedCar",
        }
    }

    /// Total RCS \[dBsm\] — order-of-magnitude values for 79 GHz.
    pub fn rcs_dbsm(self) -> f64 {
        match self {
            ObjectClass::Tripod => -12.0,
            ObjectClass::ParkingMeter => -8.0,
            ObjectClass::StreetLamp => -2.0,
            ObjectClass::RoadSign => 2.0,
            ObjectClass::Pedestrian => -6.0,
            ObjectClass::Tree => 0.0,
            ObjectClass::Guardrail => 5.0,
            ObjectClass::ParkedCar => 10.0,
        }
    }

    /// Median cross-polarization rejection \[dB\] (§7.2: background
    /// objects reject a median of 16–19 dB).
    pub fn polarization_rejection_db(self) -> f64 {
        match self {
            ObjectClass::Tripod => 18.0,
            ObjectClass::ParkingMeter => 19.0,
            ObjectClass::StreetLamp => 18.0,
            ObjectClass::RoadSign => 18.5,
            ObjectClass::Pedestrian => 17.0,
            ObjectClass::Tree => 17.5,
            ObjectClass::Guardrail => 19.0,
            ObjectClass::ParkedCar => 18.5,
        }
    }

    /// Plan-view spatial extent (x-extent, y-extent) \[m\] controlling
    /// the Fig. 13b point-cloud size.
    pub fn extent_m(self) -> (f64, f64) {
        match self {
            ObjectClass::Tripod => (0.25, 0.25),
            ObjectClass::ParkingMeter => (0.25, 0.2),
            ObjectClass::StreetLamp => (0.3, 0.3),
            ObjectClass::RoadSign => (0.45, 0.15),
            ObjectClass::Pedestrian => (0.3, 0.25),
            ObjectClass::Tree => (0.5, 0.5),
            ObjectClass::Guardrail => (3.0, 0.1),
            ObjectClass::ParkedCar => (4.2, 1.7),
        }
    }

    /// Number of point scatterers modelling the object.
    pub fn n_scatterers(self) -> usize {
        match self {
            ObjectClass::Tripod => 6,
            ObjectClass::ParkingMeter => 6,
            ObjectClass::StreetLamp => 8,
            ObjectClass::RoadSign => 10,
            ObjectClass::Pedestrian => 8,
            ObjectClass::Tree => 14,
            ObjectClass::Guardrail => 20,
            ObjectClass::ParkedCar => 24,
        }
    }
}

/// A placed clutter object.
#[derive(Clone, Debug)]
pub struct ClutterObject {
    class: ObjectClass,
    center: Vec3,
    /// Scatterer offsets from the centre.
    offsets: Vec<Vec3>,
    /// Per-scatterer static speckle phases \[rad\].
    phases: Vec<f64>,
    jones: JonesMatrix,
}

impl ClutterObject {
    /// Places an object of `class` at `center`; `seed` fixes its
    /// speckle realization (same seed = same "physical" object).
    pub fn new(class: ObjectClass, center: Vec3, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc1u64.wrapping_mul(31));
        let (ex, ey) = class.extent_m();
        let n = class.n_scatterers();
        let offsets: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    (rng.gen::<f64>() - 0.5) * ex,
                    (rng.gen::<f64>() - 0.5) * ey,
                    (rng.gen::<f64>() - 0.5) * 0.5,
                )
            })
            .collect();
        let phases: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        ClutterObject {
            class,
            center,
            offsets,
            phases,
            jones: JonesMatrix::clutter(Db::new(class.polarization_rejection_db())),
        }
    }

    /// The object class.
    pub fn class(&self) -> ObjectClass {
        self.class
    }
}

impl Reflector for ClutterObject {
    fn echoes(
        &self,
        radar_pos: Vec3,
        tx: Polarization,
        rx: Polarization,
        ctx: &EchoContext,
    ) -> Vec<SceneEcho> {
        // Split the total RCS across the scatterers (power split).
        let sigma_total = ros_em::db::db_to_pow(self.class.rcs_dbsm());
        let per_point_amp = (sigma_total / self.offsets.len().as_f64()).sqrt();
        let chan = self.jones.channel(tx, rx);

        self.offsets
            .iter()
            .zip(&self.phases)
            .map(|(off, &phi)| {
                let pos = self.center + *off;
                let f = chan * Complex64::from_polar(per_point_amp, phi);
                SceneEcho {
                    pos,
                    amp: ctx.echo_amplitude_at(f, radar_pos, pos),
                }
            })
            .collect()
    }

    fn center(&self) -> Vec3 {
        self.center
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ClutterObject::new(ObjectClass::Tree, Vec3::ZERO, 7);
        let b = ClutterObject::new(ObjectClass::Tree, Vec3::ZERO, 7);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.phases, b.phases);
        let c = ClutterObject::new(ObjectClass::Tree, Vec3::ZERO, 8);
        assert_ne!(a.offsets, c.offsets);
    }

    #[test]
    fn echo_count_matches_scatterers() {
        let ctx = EchoContext::ti_clear();
        for class in ObjectClass::ALL {
            let o = ClutterObject::new(class, Vec3::new(0.0, 3.0, 0.0), 1);
            let e = o.echoes(Vec3::ZERO, Polarization::V, Polarization::V, &ctx);
            assert_eq!(e.len(), class.n_scatterers());
        }
    }

    #[test]
    fn copol_total_power_near_class_rcs() {
        // Incoherent sum of the per-point powers equals the class RCS
        // through the radar equation.
        let ctx = EchoContext::ti_clear();
        let d = 4.0;
        let o = ClutterObject::new(ObjectClass::RoadSign, Vec3::new(0.0, d, 0.0), 3);
        let echoes = o.echoes(Vec3::ZERO, Polarization::V, Polarization::V, &ctx);
        let total_mw: f64 = echoes.iter().map(|e| e.amp.norm_sqr()).sum();
        let total_dbm = 10.0 * total_mw.log10();
        let expected = ctx
            .budget
            .received_power_dbm(ObjectClass::RoadSign.rcs_dbsm(), d);
        // Points sit at slightly different ranges: small spread allowed.
        assert!((total_dbm - expected).abs() < 1.0, "{total_dbm} vs {expected}");
    }

    #[test]
    fn cross_pol_suppressed_16_to_19_db() {
        let ctx = EchoContext::ti_clear();
        for class in ObjectClass::ALL {
            let o = ClutterObject::new(class, Vec3::new(0.0, 3.0, 0.0), 5);
            let co: f64 = o
                .echoes(Vec3::ZERO, Polarization::V, Polarization::V, &ctx)
                .iter()
                .map(|e| e.amp.norm_sqr())
                .sum();
            let cross: f64 = o
                .echoes(Vec3::ZERO, Polarization::H, Polarization::V, &ctx)
                .iter()
                .map(|e| e.amp.norm_sqr())
                .sum();
            let rejection = 10.0 * (co / cross).log10();
            assert!(
                (rejection - class.polarization_rejection_db()).abs() < 0.5,
                "{class:?}: {rejection} dB"
            );
        }
    }

    #[test]
    fn extent_bounds_offsets() {
        let o = ClutterObject::new(ObjectClass::Pedestrian, Vec3::ZERO, 11);
        let (ex, ey) = ObjectClass::Pedestrian.extent_m();
        for off in &o.offsets {
            assert!(off.x.abs() <= ex / 2.0 + 1e-12);
            assert!(off.y.abs() <= ey / 2.0 + 1e-12);
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = ObjectClass::EXTENDED.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn extended_objects_are_large_and_strong() {
        // Guardrails and parked cars dwarf the tag in both detector
        // features — they should never classify as tags.
        for class in [ObjectClass::Guardrail, ObjectClass::ParkedCar] {
            let (ex, _) = class.extent_m();
            assert!(ex >= 3.0);
            assert!(class.rcs_dbsm() >= 5.0);
            assert!(class.polarization_rejection_db() >= 18.0);
        }
    }

    #[test]
    fn center_accessor() {
        let c = Vec3::new(1.0, 2.0, 0.3);
        let o = ClutterObject::new(ObjectClass::StreetLamp, c, 2);
        assert_eq!(o.center(), c);
        assert_eq!(o.class(), ObjectClass::StreetLamp);
    }
}
