//! The scene↔radar interface.

use ros_em::atten::{fog_round_trip_db, FogLevel};
use ros_em::jones::Polarization;
use ros_em::radar_eq::RadarLinkBudget;
use ros_em::{Complex64, Vec3};

/// One scatterer's return (mirrors `ros_radar::Echo`; duplicated here
/// so the scene layer does not depend on the radar crate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SceneEcho {
    /// Absolute scatterer position \[m\].
    pub pos: Vec3,
    /// Complex received amplitude \[√mW\] at the reference antenna.
    pub amp: Complex64,
}

/// Shared context for echo computation.
#[derive(Clone, Copy, Debug)]
pub struct EchoContext {
    /// The interrogating radar's link budget.
    pub budget: RadarLinkBudget,
    /// Current weather.
    pub fog: FogLevel,
    /// Ground-bounce (two-ray) reflection coefficient; `None` disables
    /// the multipath model. Asphalt at 79 GHz and grazing incidence is
    /// ≈ −0.3…−0.8 (amplitude, with the sign of the phase flip).
    pub ground_coeff: Option<f64>,
}

impl EchoContext {
    /// TI-radar context in clear weather.
    pub fn ti_clear() -> Self {
        EchoContext {
            budget: RadarLinkBudget::ti_eval(),
            fog: FogLevel::Clear,
            ground_coeff: None,
        }
    }

    /// Enables the two-ray ground-bounce model with the given
    /// amplitude reflection coefficient (e.g. −0.5 for asphalt).
    pub fn with_ground(mut self, coeff: f64) -> Self {
        self.ground_coeff = Some(coeff);
        self
    }

    /// Received field amplitude \[√mW\] for a scatterer of complex RCS
    /// amplitude `f` \[√m²\] at distance `d_m`, including round-trip
    /// propagation phase and fog loss.
    pub fn echo_amplitude(&self, f: Complex64, d_m: f64) -> Complex64 {
        if d_m <= 0.0 {
            return Complex64::ZERO;
        }
        // Radar equation with σ = 1 m² gives the per-√σ scale factor.
        let p_unit_dbm = self.budget.received_power_dbm(0.0, d_m);
        let fog_db = fog_round_trip_db(self.fog, d_m);
        let scale = ros_em::db::db_to_lin(p_unit_dbm - fog_db);
        let lambda = ros_em::constants::wavelength(self.budget.freq_hz);
        let phase = -2.0 * std::f64::consts::TAU * d_m / lambda; // −4πd/λ
        f * Complex64::from_polar(scale, phase)
    }
}

impl EchoContext {
    /// Received field amplitude including the two-ray ground bounce
    /// when enabled: the direct round trip plus the round trip via the
    /// scatterer's ground image (one bounce each way is the dominant
    /// multipath term at roadside geometries).
    pub fn echo_amplitude_at(
        &self,
        f: Complex64,
        radar_pos: Vec3,
        scatterer_pos: Vec3,
    ) -> Complex64 {
        let d_direct = radar_pos.distance(scatterer_pos);
        let direct = self.echo_amplitude(f, d_direct);
        match self.ground_coeff {
            None => direct,
            Some(gamma) => {
                // Image of the scatterer below the road plane (z = 0).
                let image = Vec3::new(scatterer_pos.x, scatterer_pos.y, -scatterer_pos.z);
                let d_bounce = radar_pos.distance(image);
                // One-way direct + one-way bounced, both directions:
                // two cross terms of amplitude γ and one double-bounce
                // of γ². Each uses the mean path for the spreading loss.
                let cross_path = (d_direct + d_bounce) / 2.0;
                let cross = self.echo_amplitude(f, cross_path)
                    * Complex64::from_polar(
                        gamma.abs(),
                        if gamma < 0.0 { std::f64::consts::PI } else { 0.0 },
                    )
                    * phase_for_extra_path(d_bounce - d_direct, self.budget.freq_hz);
                let double = self.echo_amplitude(f, d_bounce)
                    * Complex64::real(gamma * gamma)
                    * phase_for_extra_path(2.0 * (d_bounce - d_direct), self.budget.freq_hz);
                direct + cross * 2.0 + double
            }
        }
    }
}

/// Round-trip phase factor for `extra_m` of additional one-way path.
fn phase_for_extra_path(extra_m: f64, freq_hz: f64) -> Complex64 {
    let lambda = ros_em::constants::wavelength(freq_hz);
    Complex64::cis(-std::f64::consts::TAU * extra_m / lambda)
}

/// Anything in the scene that reflects radar energy.
pub trait Reflector {
    /// Echoes produced for a radar at `radar_pos` transmitting with
    /// polarization `tx` and receiving with `rx`.
    fn echoes(
        &self,
        radar_pos: Vec3,
        tx: Polarization,
        rx: Polarization,
        ctx: &EchoContext,
    ) -> Vec<SceneEcho>;

    /// Nominal centre of the reflector \[m\] (for ground truth and
    /// cluster association in experiments).
    fn center(&self) -> Vec3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_amplitude_matches_radar_equation() {
        let ctx = EchoContext::ti_clear();
        // σ = −23 dBsm at 3 m.
        let f = Complex64::real(10f64.powf(-23.0 / 20.0));
        let amp = ctx.echo_amplitude(f, 3.0);
        let p_dbm = 20.0 * amp.abs().log10();
        let expected = ctx.budget.received_power_dbm(-23.0, 3.0);
        assert!((p_dbm - expected).abs() < 1e-9, "{p_dbm} vs {expected}");
    }

    #[test]
    fn echo_phase_tracks_range() {
        let ctx = EchoContext::ti_clear();
        let f = Complex64::ONE;
        let lambda = ros_em::constants::wavelength(ctx.budget.freq_hz);
        let a1 = ctx.echo_amplitude(f, 3.0);
        let a2 = ctx.echo_amplitude(f, 3.0 + lambda / 4.0);
        // λ/4 of extra range = π of extra round-trip phase.
        let dphi = ros_em::geom::wrap_angle(a2.arg() - a1.arg());
        assert!((dphi.abs() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn fog_attenuates() {
        let mut ctx = EchoContext::ti_clear();
        let f = Complex64::ONE;
        let clear = ctx.echo_amplitude(f, 6.0).abs();
        ctx.fog = FogLevel::Heavy;
        let foggy = ctx.echo_amplitude(f, 6.0).abs();
        assert!(foggy < clear);
        let loss_db = 20.0 * (clear / foggy).log10();
        assert!(loss_db > 0.5 && loss_db < 2.0, "fog loss {loss_db}");
    }

    #[test]
    fn ground_bounce_modulates_with_height() {
        // Two-ray interference: sweeping the scatterer height changes
        // the direct/bounce phase relation, rippling the amplitude.
        let ctx = EchoContext::ti_clear().with_ground(-0.6);
        let radar = Vec3::new(0.0, 0.0, 0.5);
        let f = Complex64::ONE;
        let mut amps = Vec::new();
        for i in 0..40 {
            let z = 0.3 + i as f64 * 0.01;
            let a = ctx
                .echo_amplitude_at(f, radar, Vec3::new(0.0, 4.0, z))
                .abs();
            amps.push(a);
        }
        let max = amps.iter().cloned().fold(0.0_f64, f64::max);
        let min = amps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.5, "two-ray ripple missing: {min}..{max}");
    }

    #[test]
    fn no_ground_matches_direct_path() {
        let ctx = EchoContext::ti_clear();
        let radar = Vec3::new(0.0, 0.0, 1.0);
        let target = Vec3::new(0.0, 3.0, 1.0);
        let via_at = ctx.echo_amplitude_at(Complex64::ONE, radar, target);
        let direct = ctx.echo_amplitude(Complex64::ONE, radar.distance(target));
        assert!((via_at - direct).abs() < 1e-15);
    }

    #[test]
    fn zero_distance_is_silent() {
        let ctx = EchoContext::ti_clear();
        assert_eq!(ctx.echo_amplitude(Complex64::ONE, 0.0), Complex64::ZERO);
    }
}
