//! Scene presets: reproducible roadside environments.
//!
//! The evaluation scenes of §7 are hand-assembled (a tag on a tripod,
//! a few nearby objects). This module provides named presets so
//! examples, tests, and experiments share identical environments —
//! the simulation analogue of "the parking lot behind the lab".

use crate::objects::{ClutterObject, ObjectClass};
use ros_em::Vec3;

/// A named scene preset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenePreset {
    /// Empty roadside: the tag alone (micro-benchmarks).
    Clean,
    /// The Fig. 11 setup: one tripod ~1.4 m down-road of the tag.
    TripodPair,
    /// A typical urban curb: meter, lamp, sign, pedestrian.
    UrbanCurb,
    /// A highway shoulder: guardrail, sign, parked car.
    HighwayShoulder,
    /// Stress test: everything at once.
    Crowded,
}

impl ScenePreset {
    /// All presets.
    pub const ALL: [ScenePreset; 5] = [
        ScenePreset::Clean,
        ScenePreset::TripodPair,
        ScenePreset::UrbanCurb,
        ScenePreset::HighwayShoulder,
        ScenePreset::Crowded,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ScenePreset::Clean => "clean",
            ScenePreset::TripodPair => "tripod-pair",
            ScenePreset::UrbanCurb => "urban-curb",
            ScenePreset::HighwayShoulder => "highway-shoulder",
            ScenePreset::Crowded => "crowded",
        }
    }

    /// Builds the clutter for a tag standing at `(0, standoff_m, 1)`.
    ///
    /// Objects keep ≥1.2 m of separation from the tag (§7.2 notes that
    /// objects with sufficient separation "do not usually interfere
    /// with RoS decoding"); `seed` fixes all speckle realizations.
    pub fn build(self, standoff_m: f64, seed: u64) -> Vec<ClutterObject> {
        let y = standoff_m;
        let mk = |class: ObjectClass, x: f64, dy: f64, s: u64| {
            ClutterObject::new(class, Vec3::new(x, y + dy, 1.0), seed ^ s)
        };
        match self {
            ScenePreset::Clean => Vec::new(),
            ScenePreset::TripodPair => vec![mk(ObjectClass::Tripod, 1.4, 0.1, 1)],
            ScenePreset::UrbanCurb => vec![
                mk(ObjectClass::ParkingMeter, -2.0, 0.2, 2),
                mk(ObjectClass::StreetLamp, 2.1, 0.4, 3),
                mk(ObjectClass::RoadSign, 3.6, 0.3, 4),
                mk(ObjectClass::Pedestrian, -3.4, -0.2, 5),
            ],
            ScenePreset::HighwayShoulder => vec![
                mk(ObjectClass::Guardrail, 4.5, 0.6, 6),
                mk(ObjectClass::RoadSign, -2.8, 0.4, 7),
                mk(ObjectClass::ParkedCar, -6.0, 0.8, 8),
            ],
            ScenePreset::Crowded => {
                let mut v = ScenePreset::UrbanCurb.build(standoff_m, seed);
                v.extend(ScenePreset::HighwayShoulder.build(standoff_m, seed ^ 0xff));
                v.push(mk(ObjectClass::Tree, 5.4, 1.0, 9));
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reflector::Reflector;

    #[test]
    fn preset_sizes() {
        assert_eq!(ScenePreset::Clean.build(3.0, 1).len(), 0);
        assert_eq!(ScenePreset::TripodPair.build(3.0, 1).len(), 1);
        assert_eq!(ScenePreset::UrbanCurb.build(3.0, 1).len(), 4);
        assert_eq!(ScenePreset::HighwayShoulder.build(3.0, 1).len(), 3);
        assert_eq!(ScenePreset::Crowded.build(3.0, 1).len(), 8);
    }

    #[test]
    fn objects_keep_clearance_from_tag() {
        let tag_pos = Vec3::new(0.0, 3.0, 1.0);
        for preset in ScenePreset::ALL {
            for obj in preset.build(3.0, 7) {
                let d = obj.center().distance(tag_pos);
                assert!(
                    d >= 1.2,
                    "{}: object at {:?} only {d:.2} m from the tag",
                    preset.name(),
                    obj.center()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ScenePreset::Crowded.build(3.0, 42);
        let b = ScenePreset::Crowded.build(3.0, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.center(), y.center());
            assert_eq!(x.class(), y.class());
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = ScenePreset::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
