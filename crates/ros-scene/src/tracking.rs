//! Self-tracking error injection (Fig. 16d).
//!
//! The decoder needs the radar's position at every frame to map RSS
//! samples onto the `u = cos θ` axis. Real vehicles estimate their
//! pose from IMU + speedometer dead reckoning, which accumulates
//! *relative drift* — §7.3 evaluates "relative drifting errors from 2%
//! to 10%" of the travelled distance. This module perturbs ground-truth
//! tracks the same way: the believed travel distance is scaled by
//! `(1 + drift)` plus an optional random-walk jitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ros_em::Vec3;

/// A tracking-error model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackingError {
    /// Relative drift of travelled distance (0.02 = 2%).
    pub drift: f64,
    /// Standard deviation of per-frame random-walk jitter \[m\].
    pub jitter_m: f64,
    /// RNG seed for the jitter realization.
    pub seed: u64,
}

impl TrackingError {
    /// Perfect tracking.
    pub fn none() -> Self {
        TrackingError {
            drift: 0.0,
            jitter_m: 0.0,
            seed: 0,
        }
    }

    /// Pure relative drift of the given fraction.
    pub fn drift(fraction: f64) -> Self {
        TrackingError {
            drift: fraction,
            jitter_m: 0.0,
            seed: 0,
        }
    }

    /// Applies the model to a ground-truth track, returning the
    /// believed positions.
    ///
    /// Drift scales each position's displacement from the track start;
    /// jitter adds an integrated random walk. Equivalent to driving a
    /// [`TrackingStream`] over the track (this is literally how it is
    /// implemented, so the two can never diverge).
    pub fn apply(&self, truth: &[Vec3]) -> Vec<Vec3> {
        let mut stream = TrackingStream::new(*self);
        truth.iter().map(|&p| stream.advance(p)).collect()
    }

    /// The believed-vs-true position error at the end of a track of
    /// length `travel_m` \[m\] (drift component only).
    pub fn terminal_error_m(&self, travel_m: f64) -> f64 {
        self.drift * travel_m
    }
}

/// Incremental realization of a [`TrackingError`]: yields believed
/// positions one ground-truth frame at a time in O(1) memory.
///
/// The RNG stream, origin anchoring, and evaluation order are exactly
/// those of [`TrackingError::apply`] (which is implemented on top of
/// this), so a streamed track is bit-identical to the whole-track
/// method at every frame. The streaming reader uses this so an
/// arbitrarily long drive never materializes its track.
#[derive(Clone, Debug)]
pub struct TrackingStream {
    err: TrackingError,
    rng: StdRng,
    walk: Vec3,
    origin: Option<Vec3>,
}

impl TrackingStream {
    /// Starts a fresh realization of `err`; the first position fed to
    /// [`TrackingStream::advance`] anchors the track origin.
    pub fn new(err: TrackingError) -> Self {
        TrackingStream {
            err,
            rng: StdRng::seed_from_u64(err.seed ^ 0x7ac4_11e5),
            walk: Vec3::ZERO,
            origin: None,
        }
    }

    /// The believed position for the next ground-truth position.
    pub fn advance(&mut self, truth: Vec3) -> Vec3 {
        let origin = *self.origin.get_or_insert(truth);
        if self.err.jitter_m > 0.0 {
            self.walk += Vec3::new(
                (self.rng.gen::<f64>() - 0.5) * 2.0 * self.err.jitter_m,
                (self.rng.gen::<f64>() - 0.5) * 2.0 * self.err.jitter_m,
                0.0,
            );
        }
        origin + (truth - origin) * (1.0 + self.err.drift) + self.walk
    }
}

/// Applies transient per-frame spike offsets to a believed track in
/// place — the tracking-error seam the fault-injection layer
/// (`ros-fault` `TrackingSpike`) perturbs through. Unlike
/// [`TrackingError`]'s drift/jitter (slow, integrated errors), a spike
/// displaces a *single* frame's believed pose: a GNSS multipath hit or
/// a dead-reckoning glitch. Out-of-range indices are ignored, so a
/// schedule longer than the track is harmless.
pub fn apply_spikes<I>(believed: &mut [Vec3], spikes: I)
where
    I: IntoIterator<Item = (usize, Vec3)>,
{
    for (i, offset) in spikes {
        if let Some(p) = believed.get_mut(i) {
            *p += offset;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_track(n: usize, step: f64) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::new(i as f64 * step, 0.0, 0.0)).collect()
    }

    #[test]
    fn no_error_is_identity() {
        let t = straight_track(10, 0.5);
        let b = TrackingError::none().apply(&t);
        assert_eq!(b, t);
    }

    #[test]
    fn drift_scales_displacement() {
        let t = straight_track(11, 1.0); // 10 m of travel
        let b = TrackingError::drift(0.05).apply(&t);
        // Start pinned, end overshoots by 5%.
        assert_eq!(b[0], t[0]);
        assert!((b[10].x - 10.5).abs() < 1e-12);
    }

    #[test]
    fn terminal_error_matches() {
        let e = TrackingError::drift(0.08);
        assert!((e.terminal_error_m(6.0) - 0.48).abs() < 1e-12);
    }

    #[test]
    fn jitter_deterministic_per_seed() {
        let t = straight_track(50, 0.1);
        let e = TrackingError {
            drift: 0.0,
            jitter_m: 0.01,
            seed: 3,
        };
        let a = e.apply(&t);
        let b = e.apply(&t);
        assert_eq!(a, b);
        // And the walk actually moves.
        assert!(a.iter().zip(&t).any(|(x, y)| x.distance(*y) > 1e-4));
    }

    #[test]
    fn empty_track() {
        assert!(TrackingError::drift(0.1).apply(&[]).is_empty());
    }

    #[test]
    fn stream_bit_identical_to_apply() {
        let t: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new(i as f64 * 0.05, (i as f64 * 0.11).sin(), 1.0))
            .collect();
        let e = TrackingError {
            drift: 0.04,
            jitter_m: 0.02,
            seed: 17,
        };
        let whole = e.apply(&t);
        let mut stream = TrackingStream::new(e);
        for (i, (&truth, want)) in t.iter().zip(&whole).enumerate() {
            let got = stream.advance(truth);
            assert_eq!(got.x.to_bits(), want.x.to_bits(), "frame {i}");
            assert_eq!(got.y.to_bits(), want.y.to_bits(), "frame {i}");
            assert_eq!(got.z.to_bits(), want.z.to_bits(), "frame {i}");
        }
    }

    #[test]
    fn spikes_displace_only_their_frames() {
        let mut track = straight_track(5, 1.0);
        apply_spikes(
            &mut track,
            [(1, Vec3::new(0.3, -0.2, 0.0)), (99, Vec3::new(9.0, 9.0, 9.0))],
        );
        assert_eq!(track[0], Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(track[1], Vec3::new(1.3, -0.2, 0.0));
        assert_eq!(track[2], Vec3::new(2.0, 0.0, 0.0));
    }
}
