//! Vehicle trajectories.
//!
//! The paper's field tests (§7.1) move the radar along straight
//! trajectories passing the tag — on a cart for micro-benchmarks, on a
//! sedan at 10–30 mph for the speed experiments (Fig. 18). A
//! [`Trajectory`] yields the radar pose at each frame instant.

use ros_em::Vec3;
use ros_em::units::cast::{self, AsF64};

/// A constant-velocity straight-line pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trajectory {
    /// Position at `t = 0` \[m\].
    pub start: Vec3,
    /// Velocity \[m/s\].
    pub velocity: Vec3,
    /// Total duration \[s\].
    pub duration_s: f64,
}

impl Trajectory {
    /// A pass along +x at `speed_mps`, lateral standoff `standoff_m`
    /// from the roadside line (y = 0), radar height `height_m`,
    /// spanning x ∈ \[−half_span, +half_span\].
    ///
    /// The tag convention places the tag near the origin on the y = 0
    /// roadside, so the radar drives by at y = −standoff... no: the
    /// radar is side-looking toward +y, so the *tag* sits at
    /// y = +standoff relative to the radar lane. We keep the radar lane
    /// on y = 0 and scene objects at y = standoff.
    pub fn drive_by(speed_mps: f64, half_span_m: f64, height_m: f64) -> Self {
        assert!(speed_mps > 0.0 && half_span_m > 0.0);
        Trajectory {
            start: Vec3::new(-half_span_m, 0.0, height_m),
            velocity: Vec3::new(speed_mps, 0.0, 0.0),
            duration_s: 2.0 * half_span_m / speed_mps,
        }
    }

    /// Position at time `t` \[s\] (clamped to the duration).
    pub fn position_at(&self, t: f64) -> Vec3 {
        let tc = t.clamp(0.0, self.duration_s);
        self.start + self.velocity * tc
    }

    /// Speed \[m/s\].
    pub fn speed_mps(&self) -> f64 {
        self.velocity.norm()
    }

    /// Frame instants for a radar at `frame_rate_hz`, optionally
    /// keeping only every `stride`-th frame (simulation economy: the
    /// paper's 1 kHz rate heavily oversamples slow passes).
    pub fn frame_times(&self, frame_rate_hz: f64, stride: usize) -> Vec<f64> {
        assert!(frame_rate_hz > 0.0 && stride > 0);
        let n = cast::floor_usize(self.duration_s * frame_rate_hz);
        (0..=n)
            .step_by(stride)
            .map(|i| i.as_f64() / frame_rate_hz)
            .collect()
    }

    /// Positions at the given frame instants.
    pub fn positions(&self, times: &[f64]) -> Vec<Vec3> {
        times.iter().map(|&t| self.position_at(t)).collect()
    }

    /// Travel distance between consecutive frames at `frame_rate_hz`
    /// with `stride` \[m\] — the §5.3 Nyquist quantity δs.
    pub fn frame_spacing_m(&self, frame_rate_hz: f64, stride: usize) -> f64 {
        self.speed_mps() * stride.as_f64() / frame_rate_hz
    }
}


/// A trajectory with heading changes: piecewise description of real
/// manoeuvres near a tag (lane changes, gentle curves). Positions are
/// integrated from a lateral-offset profile over the straight baseline.
#[derive(Clone, Debug)]
pub struct ManoeuvreTrajectory {
    /// Straight-line baseline.
    pub base: Trajectory,
    /// Lateral (y) offset as a function of normalized progress
    /// `t/duration ∈ [0, 1]`.
    pub profile: LateralProfile,
}

/// Supported lateral manoeuvre profiles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LateralProfile {
    /// No lateral motion (plain drive-by).
    Straight,
    /// Smooth lane change of `offset_m` centred mid-pass (raised-cosine
    /// blend).
    LaneChange {
        /// Total lateral displacement \[m\] (positive = toward the tag).
        offset_m: f64,
    },
    /// Constant-radius curve bowing toward/away from the roadside.
    Curve {
        /// Maximum lateral bow at mid-pass \[m\].
        sagitta_m: f64,
    },
}

impl ManoeuvreTrajectory {
    /// Wraps a straight drive-by with a lateral profile.
    pub fn new(base: Trajectory, profile: LateralProfile) -> Self {
        ManoeuvreTrajectory { base, profile }
    }

    /// Position at time `t` \[s\].
    pub fn position_at(&self, t: f64) -> Vec3 {
        let p = self.base.position_at(t);
        let u = (t / self.base.duration_s).clamp(0.0, 1.0);
        let dy = match self.profile {
            LateralProfile::Straight => 0.0,
            LateralProfile::LaneChange { offset_m } => {
                // Raised-cosine blend from 0 to offset.
                offset_m * 0.5 * (1.0 - (std::f64::consts::PI * u).cos())
            }
            LateralProfile::Curve { sagitta_m } => {
                // Parabolic bow, zero at the ends.
                sagitta_m * 4.0 * u * (1.0 - u)
            }
        };
        Vec3::new(p.x, p.y + dy, p.z)
    }

    /// Positions at the given frame instants.
    pub fn positions(&self, times: &[f64]) -> Vec<Vec3> {
        times.iter().map(|&t| self.position_at(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_by_geometry() {
        let t = Trajectory::drive_by(4.47, 3.0, 0.5); // 10 mph
        assert_eq!(t.position_at(0.0), Vec3::new(-3.0, 0.0, 0.5));
        let end = t.position_at(t.duration_s);
        assert!((end.x - 3.0).abs() < 1e-9);
        assert!((t.speed_mps() - 4.47).abs() < 1e-12);
    }

    #[test]
    fn position_clamps_beyond_duration() {
        let t = Trajectory::drive_by(1.0, 2.0, 0.0);
        assert_eq!(t.position_at(100.0), t.position_at(t.duration_s));
        assert_eq!(t.position_at(-5.0), t.start);
    }

    #[test]
    fn frame_times_spacing() {
        let t = Trajectory::drive_by(2.0, 1.0, 0.0); // 1 s pass
        let times = t.frame_times(1000.0, 1);
        assert_eq!(times.len(), 1001);
        assert!((times[1] - times[0] - 1e-3).abs() < 1e-12);
        let strided = t.frame_times(1000.0, 10);
        assert_eq!(strided.len(), 101);
        assert!((t.frame_spacing_m(1000.0, 10) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn positions_track_times() {
        let t = Trajectory::drive_by(2.0, 1.0, 0.3);
        let times = t.frame_times(100.0, 1);
        let pos = t.positions(&times);
        assert_eq!(pos.len(), times.len());
        assert!((pos[50].x - (-1.0 + 2.0 * 0.5)).abs() < 1e-9);
        assert!(pos.iter().all(|p| (p.z - 0.3).abs() < 1e-12));
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        Trajectory::drive_by(0.0, 1.0, 0.0);
    }

    #[test]
    fn straight_manoeuvre_matches_base() {
        let base = Trajectory::drive_by(2.0, 3.0, 1.0);
        let m = ManoeuvreTrajectory::new(base, LateralProfile::Straight);
        for t in [0.0, 0.7, base.duration_s] {
            assert_eq!(m.position_at(t), base.position_at(t));
        }
    }

    #[test]
    fn lane_change_reaches_offset() {
        let base = Trajectory::drive_by(2.0, 3.0, 1.0);
        let m = ManoeuvreTrajectory::new(base, LateralProfile::LaneChange { offset_m: 1.5 });
        assert!((m.position_at(0.0).y - 0.0).abs() < 1e-12);
        let end = m.position_at(base.duration_s);
        assert!((end.y - 1.5).abs() < 1e-9);
        // Mid-pass: half the offset.
        let mid = m.position_at(base.duration_s / 2.0);
        assert!((mid.y - 0.75).abs() < 1e-9);
    }

    #[test]
    fn curve_bows_and_returns() {
        let base = Trajectory::drive_by(2.0, 3.0, 1.0);
        let m = ManoeuvreTrajectory::new(base, LateralProfile::Curve { sagitta_m: 0.8 });
        assert!((m.position_at(0.0).y).abs() < 1e-12);
        assert!((m.position_at(base.duration_s).y).abs() < 1e-9);
        let mid = m.position_at(base.duration_s / 2.0);
        assert!((mid.y - 0.8).abs() < 1e-9);
    }
}