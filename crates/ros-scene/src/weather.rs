//! Weather conditions (Fig. 16c).
//!
//! Thin wrapper re-exporting the `ros-em` attenuation model plus a
//! convenience sweep used by the fog experiment.

pub use ros_em::atten::{fog_one_way_db, fog_round_trip_db, rain_one_way_db, FogLevel};

/// Round-trip amplitude factor (< 1) for a monostatic path of `d_m`
/// metres in the given fog.
pub fn fog_amplitude_factor(level: FogLevel, d_m: f64) -> f64 {
    ros_em::db::db_to_lin(-fog_round_trip_db(level, d_m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_factor_bounds() {
        assert_eq!(fog_amplitude_factor(FogLevel::Clear, 100.0), 1.0);
        let f = fog_amplitude_factor(FogLevel::Heavy, 6.0);
        assert!(f < 1.0 && f > 0.8);
    }

    #[test]
    fn factor_decreases_with_distance() {
        let near = fog_amplitude_factor(FogLevel::Heavy, 2.0);
        let far = fog_amplitude_factor(FogLevel::Heavy, 6.0);
        assert!(far < near);
    }
}
