//! Deterministic corridor scenario generation.
//!
//! A corridor is N roadside radars, M vehicles, K tags per radar.
//! Every (radar, vehicle, tag) triple is one *encounter* — one
//! drive-by pass with its own RNG substream, vehicle speed, and tag
//! word, all derived from the corridor's master seed. The encounter
//! list and every per-encounter parameter are pure functions of the
//! config, so any sharding of the list across workers reproduces the
//! same physics.

use ros_cache::GeomCache;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_core::stream::{DriveBySource, PassId};
use ros_core::tag::Tag;
use ros_core::SpatialCode;
use ros_exec::ParSeed;

/// Corridor scenario parameters.
#[derive(Clone, Debug)]
pub struct CorridorConfig {
    /// Roadside radars (shard dimension).
    pub n_radars: u32,
    /// Vehicles driving the corridor.
    pub n_vehicles: u32,
    /// Tags visible to each radar.
    pub n_tags: u32,
    /// Lateral radar–tag standoff \[m\].
    pub standoff_m: f64,
    /// Slowest vehicle's speed \[m/s\]; vehicle v drives 5% faster per
    /// index so passes have distinct frame counts.
    pub base_speed_mps: f64,
    /// Master seed; every encounter derives an independent substream.
    pub seed: u64,
    /// Reader configuration used by every pass.
    pub reader: ReaderConfig,
    /// Events pulled from a source per producer iteration.
    pub chunk_frames: usize,
    /// Bounded capacity of each frame channel (backpressure point).
    pub channel_capacity: usize,
}

impl Default for CorridorConfig {
    fn default() -> Self {
        CorridorConfig {
            n_radars: 2,
            n_vehicles: 2,
            n_tags: 1,
            standoff_m: 2.0,
            base_speed_mps: 2.0,
            seed: 0x0c0f_fee5,
            reader: ReaderConfig::fast(),
            chunk_frames: 128,
            channel_capacity: 256,
        }
    }
}

/// One scheduled drive-by pass of the corridor.
#[derive(Clone, Copy, Debug)]
// lint: allow-dead-pub(schedule element of encounters(); bound and destructured, never named cross-crate)
pub struct Encounter {
    /// Pass identity (also the canonical log-order key).
    pub pass: PassId,
    /// Per-encounter RNG seed (receiver noise realization).
    pub seed: u64,
    /// Vehicle speed for this pass \[m/s\].
    pub speed_mps: f64,
    /// The 4-bit word the tag encodes.
    pub word: [bool; 4],
}

/// Substream tag separating encounter-seed draws from any other
/// consumer of the corridor master seed.
const SEED_DOMAIN: u64 = 0x5e12_7e5e;

impl CorridorConfig {
    /// The full encounter list in canonical order (radar-major, then
    /// vehicle, then tag). Workers may shard this list any way they
    /// like — each encounter is self-contained.
    pub fn encounters(&self) -> Vec<Encounter> {
        let seeds = ParSeed::new(self.seed);
        let mut out = Vec::new();
        let mut index = 0u64;
        for radar in 0..self.n_radars {
            for vehicle in 0..self.n_vehicles {
                for tag in 0..self.n_tags {
                    let pass = PassId {
                        radar,
                        vehicle,
                        tag,
                        seq: 0,
                    };
                    let seed = seeds.substream(SEED_DOMAIN, index);
                    // Word bits come from the same substream family so
                    // corridors with different seeds show different
                    // sign populations. Keyed by (radar, tag) — a
                    // physically mounted tag encodes one word, so every
                    // vehicle passing radar r sees tag t's same word
                    // (and a K-tag corridor has at most K·n_radars
                    // distinct designs, which is what makes table
                    // caching scale with designs, not encounters).
                    let tag_index = u64::from(radar) * u64::from(self.n_tags) + u64::from(tag);
                    let w = seeds.substream(SEED_DOMAIN ^ 0xb17, tag_index);
                    let word = [
                        w & 1 != 0,
                        w & 2 != 0,
                        w & 4 != 0,
                        w & 8 != 0,
                    ];
                    out.push(Encounter {
                        pass,
                        seed,
                        speed_mps: self.base_speed_mps * (1.0 + 0.05 * f64::from(vehicle)),
                        word,
                    });
                    index += 1;
                }
            }
        }
        out
    }

    /// The spatial code every corridor tag is fabricated from (8-row
    /// stacks: the paper geometry at streaming-friendly size).
    fn code() -> SpatialCode {
        SpatialCode {
            rows_per_stack: 8,
            ..SpatialCode::paper_4bit()
        }
    }

    fn drive_with_tag(&self, e: &Encounter, tag: Tag) -> DriveBy {
        DriveBy::new(tag, self.standoff_m)
            .with_speed(e.speed_mps)
            .with_seed(e.seed)
    }

    /// The drive-by scenario of one encounter.
    // lint: allow-dead-pub(scenario API for external drivers; the service consumes it via source_for)
    pub fn drive_for(&self, e: &Encounter) -> DriveBy {
        let tag = Self::code()
            .encode(&e.word)
            // paper_4bit with 8 rows encodes any 4-bit word; the config
            // space cannot make this fail.
            .unwrap_or_else(|err| unreachable!("4-bit encode is total: {err}")); // lint: allow-panic(encode of a 4-bit word into a 4-bit code is total)
        self.drive_with_tag(e, tag)
    }

    /// [`CorridorConfig::drive_for`] with the tag built through an
    /// injected [`GeomCache`]: the shaping profile and per-frequency
    /// scatterer tables of each distinct (radar, tag) design build
    /// once per cache — bit-identical physics either way.
    // lint: allow-dead-pub(cached twin of drive_for; external drivers pick per cache policy)
    pub fn drive_for_with(&self, e: &Encounter, cache: &GeomCache) -> DriveBy {
        let tag = Self::code()
            .encode_with(cache, &e.word)
            .unwrap_or_else(|err| unreachable!("4-bit encode is total: {err}")); // lint: allow-panic(encode of a 4-bit word into a 4-bit code is total)
        self.drive_with_tag(e, tag)
    }

    /// A streaming frame source for one encounter.
    // lint: allow-dead-pub(per-encounter source factory; in-crate producers and external drivers share it)
    pub fn source_for(&self, e: &Encounter) -> DriveBySource {
        DriveBySource::new(self.drive_for(e), &self.reader, e.pass)
    }

    /// [`CorridorConfig::source_for`] with the tag design memoized in
    /// an injected cache (see [`CorridorConfig::drive_for_with`]).
    // lint: allow-dead-pub(cached twin of source_for; the service consumes it in-crate)
    pub fn source_for_with(&self, e: &Encounter, cache: &GeomCache) -> DriveBySource {
        DriveBySource::new(self.drive_for_with(e, cache), &self.reader, e.pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encounter_list_is_deterministic_and_ordered() {
        let cfg = CorridorConfig {
            n_radars: 3,
            n_vehicles: 2,
            n_tags: 2,
            ..CorridorConfig::default()
        };
        let a = cfg.encounters();
        let b = cfg.encounters();
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pass, y.pass);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.word, y.word);
        }
        // Canonical order = sorted order.
        let mut sorted: Vec<_> = a.iter().map(|e| e.pass).collect();
        sorted.sort();
        assert_eq!(sorted, a.iter().map(|e| e.pass).collect::<Vec<_>>());
    }

    #[test]
    fn word_is_a_property_of_the_mounted_tag() {
        // A fabricated tag encodes one word: every vehicle passing
        // radar r must read tag t's same word.
        let cfg = CorridorConfig {
            n_radars: 2,
            n_vehicles: 3,
            n_tags: 2,
            ..CorridorConfig::default()
        };
        let es = cfg.encounters();
        for a in &es {
            for b in &es {
                if a.pass.radar == b.pass.radar && a.pass.tag == b.pass.tag {
                    assert_eq!(a.word, b.word, "{:?} vs {:?}", a.pass, b.pass);
                }
            }
        }
        // And different mounted tags do not all share one word.
        let words: std::collections::BTreeSet<[bool; 4]> = es.iter().map(|e| e.word).collect();
        assert!(words.len() > 1, "degenerate word population");
    }

    #[test]
    fn encounters_have_distinct_seeds() {
        let cfg = CorridorConfig {
            n_radars: 4,
            n_vehicles: 4,
            n_tags: 2,
            ..CorridorConfig::default()
        };
        let mut seeds: Vec<u64> = cfg.encounters().iter().map(|e| e.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 32);
    }
}
