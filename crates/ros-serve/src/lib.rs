//! Fleet-scale corridor reader service.
//!
//! The batch reader ([`ros_core::reader::DriveBy`]) answers "what does
//! one pass decode to?". A deployed roadside system answers a bigger
//! question continuously: N roadside radars each watch M vehicles
//! drive past K tags, and every pass must yield a sign read without
//! the service's memory growing with drive length.
//!
//! This crate wires the streaming reader primitives
//! ([`ros_core::stream`]) into that service shape:
//!
//! * [`corridor`] — deterministic corridor scenario generation: the
//!   full encounter list (radar × vehicle × tag) with per-encounter
//!   seeds, speeds, and tag words derived from one master seed.
//! * [`service`] — the sharded worker topology: per-shard frame
//!   producers feed decode workers over bounded
//!   [`ros_exec::channel`]s (explicit backpressure — a full channel
//!   blocks the producer and counts a stall, never drops), workers
//!   fan reads into an aggregator, and the aggregate read log is
//!   proven bit-identical at any worker count by canonical ordering.
//!
//! Observability: the service emits the `serve.*` metric family
//! (declared in `ros_obs::names::ALL`) — frames in/out, reads,
//! backpressure stalls, channel high-water mark, and a decode-latency
//! histogram queryable for p50/p99 via `ros_obs::hist_quantile`.
//!
//! Geometry memoization: every worker shares one injected
//! [`ros_cache::GeomCache`] snapshot, so a K-tag corridor builds each
//! distinct tag design's tables exactly once per run regardless of the
//! encounter count; [`run_corridor`] owns a fresh cache per call,
//! [`run_corridor_with`] shares a caller-provided one, and
//! [`run_corridor_uncached`] is the no-memoization baseline. Cache
//! traffic surfaces as the `cache.*` counters and in
//! [`ServeReport`]'s `cache_hits`/`cache_misses`.

pub mod corridor;
// lint: allow-dead-pub(consumed through the crate-root re-exports below)
pub mod service;

pub use corridor::{CorridorConfig, Encounter};
pub use service::{run_corridor, run_corridor_uncached, run_corridor_with, ServeReport};
