//! The sharded streaming service topology.
//!
//! ```text
//!  producer 0 ──SPSC──▶ worker 0 ──┐
//!  producer 1 ──SPSC──▶ worker 1 ──┼─MPSC─▶ aggregator (main thread)
//!  …                   …           │
//!  producer W ──SPSC──▶ worker W ──┘
//! ```
//!
//! Encounters shard by `radar % workers`, so each roadside radar's
//! frame stream stays ordered within its shard. Every producer
//! synthesizes its shard's frames chunk by chunk through a
//! [`DriveBySource`](ros_core::stream::DriveBySource) and pushes them
//! into a *bounded* SPSC channel: when the decode worker falls behind,
//! the producer **blocks** — a stall is counted
//! (`serve.backpressure_stalls`), nothing is ever dropped. Workers run
//! one [`StreamingReader`](ros_core::stream::StreamingReader) each
//! (scratch arenas and pass buffers amortized across the whole shard)
//! and fan their [`SignRead`]s into a bounded MPSC channel the main
//! thread drains.
//!
//! ## Worker-count invariance
//!
//! Each encounter is physically self-contained (own RNG substream, own
//! decode state), so the *set* of reads is independent of sharding;
//! sorting by [`PassId`](ros_core::stream::PassId) makes the log
//! bit-identical at any worker count. [`ServeReport::log`] is that
//! canonical form; `tests/serve_stream.rs` pins 1 ≡ 2 ≡ 8 workers.

use crate::corridor::CorridorConfig;
use ros_cache::GeomCache;
use ros_core::stream::{FrameSource, SignRead, StreamEvent, StreamingReader};
use ros_em::units::cast::AsF64;
use ros_exec::channel::{bounded, ChannelStats};

/// Aggregate outcome of one corridor run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Every pass's read, sorted by canonical
    /// [`PassId`](ros_core::stream::PassId) order.
    pub reads: Vec<SignRead>,
    /// Frame events emitted by producers.
    pub frames_produced: u64,
    /// Frame events consumed by decode workers. Conservation
    /// (`frames_produced == frames_consumed`) is part of the
    /// no-silent-drop contract.
    pub frames_consumed: u64,
    /// Passes decoded.
    pub decodes: u64,
    /// Blocking sends across all frame channels (backpressure events).
    pub stalls: u64,
    /// High-water channel occupancy across all frame channels.
    pub max_occupancy: usize,
    /// Configured frame-channel capacity.
    pub capacity: usize,
    /// High-water mark of simultaneously open passes in any worker.
    pub peak_open: usize,
    /// High-water mark of buffered frames in any worker — the memory
    /// bound.
    pub peak_buffered: usize,
    /// Wall time of the run \[ns\] (0 when no clock is installed).
    pub elapsed_ns: u64,
    /// Shard/worker count the run used.
    pub workers: usize,
    /// Geometry/EM table-cache hits during this run (0 when the run
    /// was uncached).
    pub cache_hits: u64,
    /// Geometry/EM table-cache misses (= tables built) during this
    /// run. Worker-count invariant: each distinct key builds exactly
    /// once per cache regardless of sharding.
    pub cache_misses: u64,
}

impl ServeReport {
    /// The canonical read log: one [`SignRead::log_line`] per pass, in
    /// [`PassId`](ros_core::stream::PassId) order, newline-joined.
    /// Bit-identical across worker counts.
    pub fn log(&self) -> String {
        let mut s = String::new();
        for r in &self.reads {
            s.push_str(&r.log_line());
            s.push('\n');
        }
        s
    }

    /// FNV-1a digest of [`ServeReport::log`] — a compact equality
    /// token for the worker-count invariance proof.
    pub fn log_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.log().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Reads that produced trusted or partial bits (decode succeeded).
    pub fn decoded_reads(&self) -> usize {
        self.reads.iter().filter(|r| r.bits.is_some()).count()
    }
}

/// Per-shard result carried back from the scoped threads.
struct ShardOutcome {
    produced: u64,
    consumed: u64,
    decodes: u64,
    peak_open: usize,
    peak_buffered: usize,
    stats: ChannelStats,
}

/// Runs the corridor with `workers` shards (`0` = auto: the
/// [`ros_exec::threads`] resolution, so `ROS_EXEC_THREADS` governs the
/// service exactly as it governs `par_map`).
///
/// Blocks until every pass has decoded; returns the aggregate report
/// with the `serve.*` metric family emitted as a side effect.
pub fn run_corridor(cfg: &CorridorConfig, workers: usize) -> ServeReport {
    // This composition root owns a fresh cache per run: a K-tag
    // corridor builds each distinct design's tables exactly once and
    // every encounter after the first reuses them.
    run_corridor_with(cfg, workers, &GeomCache::new())
}

/// [`run_corridor`] sharing an *injected* cache: all per-radar workers
/// read one snapshot, and tables survive across runs that pass the
/// same handle (the `bench serve` cache section and the streaming
/// service reuse path). Reads are bit-identical to the uncached run at
/// any cache temperature — `tests/cache_determinism.rs` pins this.
pub fn run_corridor_with(cfg: &CorridorConfig, workers: usize, cache: &GeomCache) -> ServeReport {
    run_corridor_impl(cfg, workers, Some(cache))
}

/// [`run_corridor`] with table caching disabled — every encounter
/// recomputes its design's tables from scratch. The no-cache baseline
/// of the `bench serve` comparison.
pub fn run_corridor_uncached(cfg: &CorridorConfig, workers: usize) -> ServeReport {
    run_corridor_impl(cfg, workers, None)
}

fn run_corridor_impl(
    cfg: &CorridorConfig,
    workers: usize,
    cache: Option<&GeomCache>,
) -> ServeReport {
    let workers = if workers == 0 {
        ros_exec::threads()
    } else {
        workers
    }
    .max(1);
    let cache_before = cache.map(|c| c.snapshot());
    let t0 = ros_obs::clock::now_ns();
    let encounters = cfg.encounters();
    let cap = cfg.channel_capacity.max(1);
    let chunk = cfg.chunk_frames.max(2);

    let (reads, shards) = ros_exec::scope(|s| {
        let (read_tx, read_rx) = bounded::<SignRead>(cap);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (ev_tx, ev_rx) = bounded::<StreamEvent>(cap);
            let shard_encounters: Vec<_> = encounters
                .iter()
                .filter(|e| usize::try_from(e.pass.radar).unwrap_or(0) % workers == shard)
                .copied()
                .collect();
            // Every producer shares the same store (cloning a
            // `GeomCache` clones the handle, not the tables).
            let shard_cache = cache.cloned();
            let producer = s.spawn(move || {
                let mut produced = 0u64;
                let mut buf: Vec<StreamEvent> = Vec::with_capacity(chunk);
                for e in &shard_encounters {
                    let mut src = match &shard_cache {
                        Some(cache) => cfg.source_for_with(e, cache),
                        None => cfg.source_for(e),
                    };
                    loop {
                        buf.clear();
                        let more = src.next_events(chunk, &mut buf);
                        for ev in buf.drain(..) {
                            if matches!(ev, StreamEvent::Frame { .. }) {
                                produced += 1;
                            }
                            if ev_tx.send(ev).is_err() {
                                // Worker side is gone: nothing left to
                                // feed; report what was produced.
                                return produced;
                            }
                        }
                        if !more {
                            break;
                        }
                    }
                }
                produced
            });
            let read_tx = read_tx.clone();
            let worker = s.spawn(move || {
                let mut reader = StreamingReader::new(cfg.reader.decoder);
                let mut consumed = 0u64;
                while let Some(ev) = ev_rx.recv() {
                    if matches!(ev, StreamEvent::Frame { .. }) {
                        consumed += 1;
                    }
                    let is_end = matches!(ev, StreamEvent::PassEnd { .. });
                    let t_dec = if is_end { ros_obs::clock::now_ns() } else { 0 };
                    if let Some(read) = reader.ingest(ev) {
                        ros_obs::hist(
                            "serve.decode_latency_ns",
                            ros_obs::clock::now_ns().saturating_sub(t_dec).as_f64(),
                        );
                        if read_tx.send(read).is_err() {
                            break;
                        }
                    }
                }
                for read in reader.finish() {
                    if read_tx.send(read).is_err() {
                        break;
                    }
                }
                let stats = ev_rx.stats();
                (
                    consumed,
                    reader.decodes(),
                    reader.peak_open(),
                    reader.peak_buffered(),
                    stats,
                )
            });
            handles.push((producer, worker));
        }
        // The main thread keeps no sender: drop its clone so the read
        // channel closes once the last worker finishes.
        drop(read_tx);
        let mut reads = Vec::new();
        while let Some(r) = read_rx.recv() {
            reads.push(r);
        }
        let shards: Vec<ShardOutcome> = handles
            .into_iter()
            .map(|(p, w)| {
                let produced = p.join().unwrap_or(0);
                let (consumed, decodes, peak_open, peak_buffered, stats) =
                    w.join().unwrap_or((0, 0, 0, 0, ChannelStats {
                        stalls: 0,
                        max_occupancy: 0,
                        capacity: cap,
                    }));
                ShardOutcome {
                    produced,
                    consumed,
                    decodes,
                    peak_open,
                    peak_buffered,
                    stats,
                }
            })
            .collect();
        (reads, shards)
    });

    let mut reads = reads;
    reads.sort_by_key(|r| r.pass);

    let mut report = ServeReport {
        reads,
        frames_produced: 0,
        frames_consumed: 0,
        decodes: 0,
        stalls: 0,
        max_occupancy: 0,
        capacity: cap,
        peak_open: 0,
        peak_buffered: 0,
        elapsed_ns: ros_obs::clock::now_ns().saturating_sub(t0),
        workers,
        cache_hits: 0,
        cache_misses: 0,
    };
    for sh in &shards {
        report.frames_produced += sh.produced;
        report.frames_consumed += sh.consumed;
        report.decodes += sh.decodes;
        report.stalls += sh.stats.stalls;
        report.max_occupancy = report.max_occupancy.max(sh.stats.max_occupancy);
        report.peak_open = report.peak_open.max(sh.peak_open);
        report.peak_buffered = report.peak_buffered.max(sh.peak_buffered);
    }

    // Counters are emitted once, from this serial epilogue, so the
    // exported totals are worker-count invariant.
    ros_obs::count("serve.frames_in", usize::try_from(report.frames_produced).unwrap_or(usize::MAX));
    ros_obs::count("serve.frames_out", usize::try_from(report.frames_consumed).unwrap_or(usize::MAX));
    ros_obs::count("serve.reads", report.reads.len());
    ros_obs::count("serve.backpressure_stalls", usize::try_from(report.stalls).unwrap_or(usize::MAX));
    ros_obs::gauge("serve.channel_max_occupancy", report.max_occupancy.as_f64());
    if let (Some(cache), Some(before)) = (cache, cache_before) {
        // Delta export from the same serial epilogue, so `cache.*`
        // totals are worker-count invariant too.
        cache.emit_obs(&before);
        let after = cache.snapshot();
        report.cache_hits = after.hits().saturating_sub(before.hits());
        report.cache_misses = after.misses().saturating_sub(before.misses());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorridorConfig {
        CorridorConfig {
            n_radars: 2,
            n_vehicles: 1,
            n_tags: 1,
            channel_capacity: 8,
            chunk_frames: 32,
            ..CorridorConfig::default()
        }
    }

    #[test]
    fn corridor_decodes_every_pass_and_conserves_frames() {
        let cfg = small();
        let report = run_corridor(&cfg, 2);
        assert_eq!(report.reads.len(), 2);
        assert_eq!(report.decodes, 2);
        assert_eq!(report.frames_produced, report.frames_consumed);
        assert!(report.frames_produced > 0);
        assert!(report.max_occupancy <= report.capacity);
        assert!(report.decoded_reads() >= 1, "at least one clean decode");
    }

    #[test]
    fn log_is_worker_count_invariant() {
        let cfg = small();
        let one = run_corridor(&cfg, 1);
        let four = run_corridor(&cfg, 4);
        assert_eq!(one.log(), four.log());
        assert_eq!(one.log_digest(), four.log_digest());
    }
}
