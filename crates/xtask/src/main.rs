//! Workspace automation tasks, `cargo xtask` style.
//!
//! `xtask` is a thin terminal driver; all analysis lives in
//! [`ros_lint`] (see DESIGN.md §12 for the architecture and the rule
//! catalog):
//!
//! ```text
//! cargo run -p xtask -- lint                        # static-analysis gate
//! cargo run -p xtask -- lint --json target/lint.json
//! cargo run -p xtask -- lint --update-baseline      # re-grandfather current debt
//! cargo run -p xtask -- lint --no-baseline          # judge without the baseline
//! cargo run -p xtask -- lint --explain RULE-ID      # rationale + fix guidance
//! cargo run -p xtask -- lint-artifact target/lint.json   # validate + summarize artifact
//! cargo run -p xtask -- lint-config                # baseline/ratchet vs registry drift
//! ```
//!
//! The gate exits non-zero on any finding not covered by
//! `lint-baseline.json` at the workspace root. `lint-artifact`
//! re-parses a findings artifact written by `--json` (verify.sh uses
//! it to assert the artifact is well-formed) and prints the per-rule
//! counts. `lint-config` cross-checks both config files against the
//! rule registry so a renamed rule cannot orphan its debt entries and
//! a new rule cannot ship without a ratchet ceiling.

use std::path::PathBuf;
use std::process::ExitCode;

use ros_lint::engine::PassTimings;
use ros_lint::json::Value;
use ros_lint::GateOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("lint-artifact") => lint_artifact(&args[1..]),
        Some("lint-config") => lint_config(),
        Some("ratchet") => ratchet(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--json PATH] [--update-baseline] [--no-baseline]\n\
                cargo run -p xtask -- lint --explain RULE-ID\n\
                cargo run -p xtask -- lint-artifact PATH\n\
                cargo run -p xtask -- lint-config\n\
                cargo run -p xtask -- ratchet [--tighten]"
    );
}

/// Prints one rule's catalog entry: summary, rationale, fix guidance.
fn explain(id: &str) -> ExitCode {
    let Some(r) = ros_lint::rules::rule(id) else {
        eprintln!("xtask lint: unknown rule `{id}`; known rules:");
        for r in ros_lint::RULES {
            eprintln!("  {}", r.id);
        }
        return ExitCode::from(2);
    };
    println!("{} ({})", r.id, r.severity.as_str());
    println!("  {}", r.summary);
    println!("\nwhy:\n  {}", r.rationale);
    println!("\nfix:\n  {}", r.fix);
    ExitCode::SUCCESS
}

/// Locates the workspace root: the manifest dir of xtask is
/// `crates/xtask`, two levels below the root; fall back to the current
/// directory (the normal `cargo run` case).
fn workspace_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

/// Monotonic nanoseconds since the first call — the clock xtask
/// injects into the gate so `PassTimings` measures real wall time.
/// The engine itself stays clock-free (its own `no-wallclock` rule).
fn lint_clock_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn lint(args: &[String]) -> ExitCode {
    let mut opts = GateOptions::default();
    opts.clock = Some(lint_clock_ns);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => opts.json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => opts.update_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--explain" => match it.next() {
                Some(id) => return explain(id),
                None => {
                    eprintln!("xtask lint: --explain needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    match ros_lint::run_gate(&workspace_root(), &opts) {
        Ok(outcome) => {
            print!("{}", outcome.human_report);
            let t: PassTimings = outcome.timings;
            println!(
                "xtask lint: passes lex {}us scan {}us callgraph {}us lockgraph {}us \
                 rules {}us (total {}us)",
                t.lex_ns / 1_000,
                t.scan_ns / 1_000,
                t.callgraph_ns / 1_000,
                t.lockgraph_ns / 1_000,
                t.rules_ns / 1_000,
                t.total_ns / 1_000,
            );
            for note in &outcome.notes {
                println!("xtask lint: {note}");
            }
            if outcome.passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Checks the per-rule debt ratchet: `lint-ratchet.json` pins the
/// exact baselined debt each listed rule may carry, so a rule's
/// grandfathered count can only move *down* through history. Debt
/// above a ceiling is a regression; debt below one fails too until
/// `--tighten` rewrites the ceilings to the (lower) current counts.
fn ratchet(args: &[String]) -> ExitCode {
    let mut tighten = false;
    for a in args {
        match a.as_str() {
            "--tighten" => tighten = true,
            other => {
                eprintln!("xtask ratchet: unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    let baseline = match ros_lint::baseline::load(&root.join(ros_lint::baseline::BASELINE_FILE)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask ratchet: {e}");
            return ExitCode::from(2);
        }
    };
    let ratchet_path = root.join(ros_lint::baseline::RATCHET_FILE);
    let ceilings = match ros_lint::baseline::load_ratchet(&ratchet_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask ratchet: {e}");
            return ExitCode::from(2);
        }
    };
    if ceilings.is_empty() {
        println!("xtask ratchet: no ceilings in {}", ratchet_path.display());
        return ExitCode::SUCCESS;
    }

    if tighten {
        let tightened: std::collections::BTreeMap<String, usize> = ceilings
            .keys()
            .map(|rule| (rule.clone(), baseline.rule_debt(rule)))
            .collect();
        let doc = ros_lint::baseline::render_ratchet(&tightened);
        if let Err(e) = std::fs::write(&ratchet_path, doc) {
            eprintln!("xtask ratchet: cannot write {}: {e}", ratchet_path.display());
            return ExitCode::from(2);
        }
        for (rule, max) in &tightened {
            println!("{rule:<22} ceiling -> {max}");
        }
        println!("tightened {}", ratchet_path.display());
        return ExitCode::SUCCESS;
    }

    for (rule, max) in &ceilings {
        println!(
            "{rule:<22} debt {:>4} / ceiling {max}",
            baseline.rule_debt(rule)
        );
    }
    let violations = ros_lint::baseline::judge_ratchet(&baseline, &ceilings);
    if violations.is_empty() {
        println!("ratchet holds");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("xtask ratchet: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Cross-checks `lint-baseline.json` and `lint-ratchet.json` against
/// the compiled-in rule registry: no debt for unregistered rules, no
/// ceiling for unregistered rules, and a ceiling for every registered
/// rule. Keeps the three sources from drifting apart silently when a
/// rule is added, renamed, or retired.
fn lint_config() -> ExitCode {
    let root = workspace_root();
    let baseline = match ros_lint::baseline::load(&root.join(ros_lint::baseline::BASELINE_FILE)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask lint-config: {e}");
            return ExitCode::from(2);
        }
    };
    let ceilings = match ros_lint::baseline::load_ratchet(&root.join(ros_lint::baseline::RATCHET_FILE))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask lint-config: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = ros_lint::baseline::check_registry_drift(&baseline, &ceilings);
    if violations.is_empty() {
        println!(
            "lint config coherent: {} registered rules, {} with baseline debt, {} ceilings",
            ros_lint::RULES.len(),
            baseline.rules().len(),
            ceilings.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("xtask lint-config: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Validates a findings artifact written by `lint --json` and prints
/// the per-rule counts — the machine-check verify.sh runs so a
/// truncated or hand-mangled artifact cannot pass silently.
fn lint_artifact(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("xtask lint-artifact: need a path");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint-artifact: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match ros_lint::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask lint-artifact: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(rules) = doc.get("rules").and_then(Value::as_arr) else {
        eprintln!("xtask lint-artifact: {path}: missing `rules` array");
        return ExitCode::FAILURE;
    };
    let clean = matches!(doc.get("clean"), Some(Value::Bool(true)));
    println!("{:<20} {:>6} {:>10} {:>6}", "rule", "found", "baselined", "new");
    for r in rules {
        let field = |k: &str| r.get(k).and_then(Value::as_f64).unwrap_or(-1.0);
        println!(
            "{:<20} {:>6} {:>10} {:>6}",
            r.get("id").and_then(Value::as_str).unwrap_or("?"),
            field("found"),
            field("baselined"),
            field("new"),
        );
    }
    println!(
        "lint artifact {path}: {} ({} finding records)",
        if clean { "clean" } else { "NEW VIOLATIONS" },
        doc.get("findings").and_then(Value::as_arr).map_or(0, <[Value]>::len),
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
