//! Workspace automation tasks, `cargo xtask` style.
//!
//! The only task today is `lint`: a dependency-free static-analysis
//! gate over `crates/*/src` that enforces the workspace's unit-safety
//! and panic-freedom conventions. It is deliberately a plain-text
//! scanner — no syn, no rustc plumbing — so it builds offline with the
//! bare toolchain and runs in milliseconds:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! Rules (see DESIGN.md, "Unit safety & static analysis"):
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(...)` are forbidden outside
//!   `#[cfg(test)]` blocks in every crate.
//! * **no-panic** — `panic!` / `todo!` / `unimplemented!` /
//!   `unreachable!` are forbidden in library crates: faulted inputs
//!   must degrade to typed errors, not abort the pipeline. Provably
//!   dead arms can be marked `lint: allow-panic(reason)`.
//! * **no-println** — `println!` / `eprintln!` (and the no-newline
//!   forms) are forbidden in library crates; diagnostics go through
//!   `ros-obs` so they are levelled, machine-parseable, and silent by
//!   default.
//! * **no-raw-cast** — bare `as` numeric casts are forbidden in library
//!   crates; use `ros_em::units::cast` or mark the line with
//!   `lint: allow-cast(reason)` in a trailing comment.
//! * **typed-db-params** — public functions must not take bare `f64`
//!   parameters named `*_db` / `*_deg`; take `units::Db` / `Degrees`.
//! * **typed-conversions** — inline dB/angle conversion idioms
//!   (`.to_radians()`, `10^(x/10)`-style `powf`) are forbidden outside
//!   the units module, which is their single sanctioned home.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

/// One reported lint violation.
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Crates whose binaries are measurement harnesses rather than library
/// API; the cast and signature rules do not apply there.
const NON_LIBRARY_CRATES: &[&str] = &["bench", "xtask"];

/// The one file allowed to spell out raw dB/angle conversions.
const UNITS_MODULE: &str = "ros-em/src/units.rs";

fn lint() -> ExitCode {
    let root = workspace_root();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if let Err(e) = collect_rust_files(&crates_dir, &mut files) {
        eprintln!("xtask lint: cannot walk {}: {e}", crates_dir.display());
        return ExitCode::from(2);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut n_files = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        n_files += 1;
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        check_file(&rel, &text, &mut violations);
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("xtask lint: {n_files} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} file(s) scanned",
            violations.len(),
            n_files
        );
        ExitCode::FAILURE
    }
}

/// Locates the workspace root: the manifest dir of xtask is
/// `crates/xtask`, two levels below the root; fall back to the current
/// directory (the normal `cargo run` case).
fn workspace_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // Only descend into each crate's `src`; skip `target`,
            // `benches`, and anything else at the crate top level.
            let at_crate_level = dir.ends_with("crates");
            if !at_crate_level || path.join("src").is_dir() {
                let next = if at_crate_level { path.join("src") } else { path };
                collect_rust_files(&next, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The per-line scanner state threaded through a file.
struct Scanner {
    /// Inside a `/* */` comment.
    in_block_comment: bool,
    /// Current brace depth (over cleaned text).
    depth: i32,
    /// A `#[cfg(test)]` attribute was seen; waiting for its `{`.
    awaiting_test_block: bool,
    /// Depth at which the active `#[cfg(test)]` block opened.
    test_depth: Option<i32>,
}

impl Scanner {
    fn new() -> Self {
        Scanner {
            in_block_comment: false,
            depth: 0,
            awaiting_test_block: false,
            test_depth: None,
        }
    }

    fn in_test(&self) -> bool {
        self.test_depth.is_some() || self.awaiting_test_block
    }

    /// Strips comments and string literals from one line, updating
    /// cross-line state (block comments, test-block tracking).
    fn clean(&mut self, line: &str) -> String {
        let bytes = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            if self.in_block_comment {
                if bytes[i..].starts_with(b"*/") {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes[i..].starts_with(b"//") => break,
                b'/' if bytes[i..].starts_with(b"/*") => {
                    self.in_block_comment = true;
                    i += 2;
                }
                b'r' if bytes[i..].starts_with(b"r\"") || bytes[i..].starts_with(b"r#\"") => {
                    // Raw string literal: r"..." or r#"..."# (single #).
                    let (open, close): (&[u8], &[u8]) = if bytes[i..].starts_with(b"r#\"") {
                        (b"r#\"", b"\"#")
                    } else {
                        (b"r\"", b"\"")
                    };
                    i += open.len();
                    while i < bytes.len() && !bytes[i..].starts_with(close) {
                        i += 1;
                    }
                    i = (i + close.len()).min(bytes.len());
                    out.push_str("\"\"");
                }
                b'"' => {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.push_str("\"\"");
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }

        // Test-block tracking over the cleaned text.
        if out.contains("#[cfg(test)]") {
            self.awaiting_test_block = true;
        }
        for ch in out.chars() {
            match ch {
                '{' => {
                    if self.awaiting_test_block {
                        self.awaiting_test_block = false;
                        self.test_depth = Some(self.depth);
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth -= 1;
                    if self.test_depth.is_some_and(|d| self.depth <= d) {
                        self.test_depth = None;
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Numeric primitive types whose `as` casts the cast rule rejects.
const NUMERIC_TYPES: &[&str] = &[
    "f64", "f32", "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
];

fn check_file(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let crate_name = rel_str
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let is_library = !NON_LIBRARY_CRATES.contains(&crate_name);
    let is_units_module = rel_str.ends_with(UNITS_MODULE);

    let mut scanner = Scanner::new();
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut cleaned = Vec::with_capacity(raw_lines.len());
    let mut in_test = Vec::with_capacity(raw_lines.len());
    for line in &raw_lines {
        // A line is "test code" if it is inside (or opens) a test
        // block; capture before cleaning so the attribute line itself
        // counts.
        let was_in_test = scanner.in_test();
        let c = scanner.clean(line);
        in_test.push(was_in_test || scanner.in_test());
        cleaned.push(c);
    }

    for (idx, clean) in cleaned.iter().enumerate() {
        let line_no = idx + 1;
        if in_test[idx] {
            continue;
        }

        // Rule: no-unwrap.
        for needle in [".unwrap()", ".expect("] {
            if clean.contains(needle) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: line_no,
                    rule: "no-unwrap",
                    message: format!(
                        "`{needle}` outside #[cfg(test)]; return a Result or handle the None case"
                    ),
                });
            }
        }

        // Rule: no-panic (library crates only, marker-suppressible).
        // The fault-injection layer feeds library code malformed input
        // on purpose; the graceful-degradation contract says such input
        // comes back as a typed error, never an abort.
        if is_library && !has_marker(&raw_lines, idx, "lint: allow-panic(") {
            for needle in ["panic!", "todo!", "unimplemented!", "unreachable!"] {
                if contains_macro_call(clean, needle) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: "no-panic",
                        message: format!(
                            "`{needle}` in library code; return a typed error so faulted \
                             input degrades instead of aborting, or mark a provably dead \
                             arm with `lint: allow-panic(reason)`"
                        ),
                    });
                }
            }
        }

        // Rule: no-println (library crates only). Ad-hoc console
        // output from library code is unconditional, unparseable, and
        // interleaves with real diagnostics; route it through ros-obs
        // events/metrics instead.
        if is_library {
            for needle in ["println!", "eprintln!", "print!", "eprint!"] {
                if contains_macro_call(clean, needle) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: "no-println",
                        message: format!(
                            "`{needle}` in library code; emit a ros_obs event/metric (or \
                             return the data) so output is levelled and machine-readable"
                        ),
                    });
                }
            }
        }

        // Rule: no-raw-spawn (everywhere outside crates/ros-exec).
        // All fan-out goes through the ros-exec executor: ad-hoc
        // threads dodge the `ROS_EXEC_THREADS` override, the chunked
        // ordering guarantee, and the determinism tests built on both.
        if crate_name != "ros-exec" {
            for needle in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if clean.contains(needle) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: "no-raw-spawn",
                        message: format!(
                            "direct `{needle}`; fan out through ros_exec::par_map so the \
                             thread-count override and determinism guarantees hold"
                        ),
                    });
                }
            }
        }

        // Rule: no-raw-cast (library crates only, marker-suppressible).
        if is_library && !has_allow_cast_marker(&raw_lines, idx) {
            for ty in find_numeric_casts(clean) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: line_no,
                    rule: "no-raw-cast",
                    message: format!(
                        "raw `as {ty}` cast; use ros_em::units::cast (or try_from), \
                         or mark the line with `lint: allow-cast(reason)`"
                    ),
                });
            }
        }

        // Rule: typed-conversions (everywhere except the units module).
        if !is_units_module {
            for pat in [".to_radians()", ".to_degrees()", "10f64.powf(", "10.0f64.powf("] {
                if clean.contains(pat) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: "typed-conversions",
                        message: format!(
                            "inline `{pat}` conversion; go through ros_em::units (Degrees/Radians, \
                             DbPower/DbAmplitude) or ros_em::db"
                        ),
                    });
                }
            }
            if clean.contains("powf(") && (clean.contains("/ 10.0)") || clean.contains("/ 20.0)")) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: line_no,
                    rule: "typed-conversions",
                    message: "inline dB-to-linear `powf(x / 10.0|20.0)`; use \
                              ros_em::db::db_to_pow / db_to_lin or the units types"
                        .to_string(),
                });
            }
        }
    }

    // Rule: typed-db-params — needs whole signatures, which may span
    // lines; collect them from the cleaned text.
    if is_library {
        for (line_no, sig) in public_fn_signatures(&cleaned, &in_test) {
            for (param, suffix) in f64_params_with_unit_suffix(&sig) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: line_no,
                    rule: "typed-db-params",
                    message: format!(
                        "public fn takes bare `{param}: f64`; use `ros_em::units::{}`",
                        if suffix == "_deg" { "Degrees" } else { "Db" }
                    ),
                });
            }
        }
    }
}

/// True when `clean` contains `needle` as a standalone macro call —
/// not as the tail of a longer identifier (`println!` is a substring
/// of `eprintln!` at offset 1; the preceding-char check rejects it).
fn contains_macro_call(clean: &str, needle: &str) -> bool {
    let bytes = clean.as_bytes();
    let mut search_from = 0;
    while let Some(pos) = clean[search_from..].find(needle) {
        let at = search_from + pos;
        search_from = at + needle.len();
        let preceded_by_ident = at > 0
            && bytes
                .get(at - 1)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        if !preceded_by_ident {
            return true;
        }
    }
    false
}

/// True when this or the previous raw line carries the given
/// `lint: allow-…(` marker.
fn has_marker(raw_lines: &[&str], idx: usize, marker: &str) -> bool {
    raw_lines[idx].contains(marker) || (idx > 0 && raw_lines[idx - 1].contains(marker))
}

/// True when this or the previous raw line carries the
/// `lint: allow-cast(...)` marker.
fn has_allow_cast_marker(raw_lines: &[&str], idx: usize) -> bool {
    has_marker(raw_lines, idx, "lint: allow-cast(")
}

/// Finds `as <numeric>` casts in a cleaned line; returns the target
/// types, one entry per cast.
fn find_numeric_casts(clean: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let bytes = clean.as_bytes();
    let mut search_from = 0;
    while let Some(pos) = clean[search_from..].find(" as ") {
        let start = search_from + pos + 4;
        search_from = start;
        let rest = &clean[start..];
        for ty in NUMERIC_TYPES {
            if rest.starts_with(ty) {
                let end = start + ty.len();
                let boundary = bytes
                    .get(end)
                    .is_none_or(|c| !c.is_ascii_alphanumeric() && *c != b'_');
                if boundary {
                    found.push(*ty);
                    break;
                }
            }
        }
    }
    found
}

/// Extracts `pub fn` signatures (line number of the `fn`, text up to
/// the closing parenthesis of the parameter list), skipping test code.
fn public_fn_signatures(cleaned: &[String], in_test: &[bool]) -> Vec<(usize, String)> {
    let mut sigs = Vec::new();
    let mut i = 0;
    while i < cleaned.len() {
        let line = &cleaned[i];
        if in_test[i] || !line.contains("pub fn ") {
            i += 1;
            continue;
        }
        let mut sig = String::new();
        let mut paren_depth = 0i32;
        let mut seen_open = false;
        let start_line = i + 1;
        'collect: while i < cleaned.len() {
            for ch in cleaned[i].chars() {
                sig.push(ch);
                match ch {
                    '(' => {
                        paren_depth += 1;
                        seen_open = true;
                    }
                    ')' => {
                        paren_depth -= 1;
                        if seen_open && paren_depth == 0 {
                            i += 1;
                            break 'collect;
                        }
                    }
                    _ => {}
                }
            }
            sig.push(' ');
            i += 1;
        }
        sigs.push((start_line, sig));
    }
    sigs
}

/// Finds parameters named `*_db` / `*_deg` that are typed bare `f64`
/// in a signature string. Returns `(param_name, suffix)` pairs.
fn f64_params_with_unit_suffix(sig: &str) -> Vec<(String, &'static str)> {
    let mut found = Vec::new();
    let bytes = sig.as_bytes();
    for suffix in ["_db", "_deg"] {
        let mut search_from = 0;
        while let Some(pos) = sig[search_from..].find(suffix) {
            let at = search_from + pos;
            search_from = at + suffix.len();
            let end = at + suffix.len();
            // Must terminate the identifier…
            if bytes.get(end).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                continue;
            }
            // …and be followed by `: f64`.
            let rest = sig[end..].trim_start();
            let Some(after_colon) = rest.strip_prefix(':') else {
                continue;
            };
            let after_colon = after_colon.trim_start();
            let is_f64 = after_colon.strip_prefix("f64").is_some_and(|r| {
                r.as_bytes()
                    .first()
                    .is_none_or(|c| !c.is_ascii_alphanumeric() && *c != b'_')
            });
            if !is_f64 {
                continue;
            }
            // Recover the full parameter name.
            let name_start = sig[..end]
                .rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .map_or(0, |p| p + 1);
            found.push((sig[name_start..end].to_string(), suffix));
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(src: &str) -> Vec<String> {
        let mut out = Vec::new();
        check_file(Path::new("crates/ros-em/src/sample.rs"), src, &mut out);
        out.iter().map(|v| format!("{}:{}", v.rule, v.line)).collect()
    }

    #[test]
    fn flags_raw_thread_spawn() {
        let hits = scan_str("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(hits, ["no-raw-spawn:1"]);
        let hits = scan_str("fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n");
        assert_eq!(hits, ["no-raw-spawn:1"]);
    }

    #[test]
    fn ros_exec_may_spawn() {
        let mut out = Vec::new();
        check_file(
            Path::new("crates/ros-exec/src/lib.rs"),
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_in_test_block_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_println_in_library_code() {
        let hits = scan_str("fn f() { println!(\"x\"); }\n");
        assert_eq!(hits, ["no-println:1"]);
        // eprintln! is one violation, not two (println! matches inside
        // it only at an identifier boundary, which is rejected).
        let hits = scan_str("fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(hits, ["no-println:1"]);
        let hits = scan_str("fn f() { eprint!(\"x\"); print!(\"y\"); }\n");
        assert_eq!(hits, ["no-println:1", "no-println:1"]);
    }

    #[test]
    fn println_allowed_in_tests_and_non_library_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(scan_str(src).is_empty());
        let mut out = Vec::new();
        check_file(
            Path::new("crates/bench/src/sample.rs"),
            "fn f() { println!(\"table row\"); }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn println_in_comments_and_strings_ignored() {
        let src = "// println! lives here\nfn f() { let s = \"println!\"; }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let hits = scan_str("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(hits, ["no-unwrap:2"]);
    }

    #[test]
    fn ignores_unwrap_in_test_block() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { y.unwrap(); }\n}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn ignores_unwrap_in_comments_and_strings() {
        let src = "// call .unwrap() here\nfn f() { let s = \".unwrap()\"; }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(scan_str("fn f() { y.unwrap_or(0); y.unwrap_or_else(|| 0); }\n").is_empty());
    }

    #[test]
    fn flags_panic_macros_in_library_code() {
        let hits = scan_str("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(hits, ["no-panic:1"]);
        let hits = scan_str("fn f() { todo!() }\n");
        assert_eq!(hits, ["no-panic:1"]);
        let hits = scan_str("fn f() { unimplemented!() }\n");
        assert_eq!(hits, ["no-panic:1"]);
        let hits = scan_str("fn f(x: u8) { match x { _ => unreachable!() } }\n");
        assert_eq!(hits, ["no-panic:1"]);
    }

    #[test]
    fn allow_panic_marker_suppresses() {
        let same = "fn f() { unreachable!() } // lint: allow-panic(n is 0..4 by construction)\n";
        assert!(scan_str(same).is_empty());
        let above = "// lint: allow-panic(dead arm)\nfn f() { panic!(\"x\") }\n";
        assert!(scan_str(above).is_empty());
    }

    #[test]
    fn panic_allowed_in_tests_and_non_library_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"assert helper\"); }\n}\n";
        assert!(scan_str(src).is_empty());
        let mut out = Vec::new();
        check_file(
            Path::new("crates/bench/src/sample.rs"),
            "fn f() { panic!(\"bad CLI flag\"); }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn assert_macros_are_not_panic_violations() {
        // assert!/assert_eq! state invariants; the no-panic rule only
        // targets the explicit panic family.
        let src = "fn f(a: usize, b: usize) { assert_eq!(a, b); assert!(a > 0); }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_raw_casts_in_library_code() {
        let hits = scan_str("fn f(n: usize) -> f64 { n as f64 }\n");
        assert_eq!(hits, ["no-raw-cast:1"]);
    }

    #[test]
    fn allow_cast_marker_suppresses() {
        let same = "fn f(n: usize) -> f64 { n as f64 } // lint: allow-cast(exact)\n";
        assert!(scan_str(same).is_empty());
        let above = "// lint: allow-cast(exact)\nfn f(n: usize) -> f64 { n as f64 }\n";
        assert!(scan_str(above).is_empty());
    }

    #[test]
    fn cast_rule_skips_non_library_crates() {
        let mut out = Vec::new();
        check_file(
            Path::new("crates/bench/src/sample.rs"),
            "fn f(n: usize) -> f64 { n as f64 }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn as_inside_identifier_is_not_a_cast() {
        assert!(scan_str("fn f() { let alias = bias; }\n").is_empty());
        assert!(find_numeric_casts("let x = y as f64x;").is_empty());
    }

    #[test]
    fn flags_db_suffixed_f64_params_across_lines() {
        let src = "pub fn g(\n    gain_db: f64,\n    az_deg: f64,\n) -> f64 { gain_db + az_deg }\n";
        let hits = scan_str(src);
        assert_eq!(hits, ["typed-db-params:1", "typed-db-params:1"]);
    }

    #[test]
    fn typed_params_pass() {
        let src = "pub fn g(gain: Db, az: Degrees, d_m: f64, x_dbsm: f64) -> f64 { 0.0 }\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn flags_inline_conversions_outside_units() {
        let hits = scan_str("fn f(a: f64) -> f64 { a.to_radians() }\n");
        assert_eq!(hits, ["typed-conversions:1"]);
        let hits = scan_str("fn f(a: f64) -> f64 { 10f64.powf(a / 10.0) }\n");
        assert_eq!(hits, ["typed-conversions:1", "typed-conversions:1"]);
    }

    #[test]
    fn units_module_may_convert() {
        let mut out = Vec::new();
        check_file(
            Path::new("crates/ros-em/src/units.rs"),
            "fn f(a: f64) -> f64 { a.to_radians() }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/*\n x.unwrap()\n*/\nfn f() {}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn code_resumes_after_test_block() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn f() { y.unwrap(); }\n";
        let hits = scan_str(src);
        assert_eq!(hits, ["no-unwrap:5"]);
    }
}
