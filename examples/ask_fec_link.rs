//! The §8 extensions end-to-end: a 4-level ASK tag carrying a
//! Hamming(7,4)-protected message, decoded through the physics with a
//! deliberately injected bit error.
//!
//! ```bash
//! cargo run --release -p ros-examples --bin ask_fec_link
//! ```

use ros_core::ask::AskCode;
use ros_core::decode::{decode, DecoderConfig};
use ros_core::fec;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::Vec3;

fn main() {
    println!("RoS §8 extensions: ASK + Hamming(7,4)");
    println!("=====================================");

    // A 4-bit message, Hamming-protected into 7 coded bits.
    let message = [true, false, true, true];
    let coded = fec::protect(&message);
    println!(
        "message {:?} → 7 coded bits {:?}",
        message.map(|b| b as u8),
        coded.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );

    // Pack 7 bits into ASK symbols (2 bits per symbol, 4 symbols on
    // two boards of 3 data slots... here: 4 symbols across one tag +
    // one spare slot unused). For the demo we map pairs of coded bits
    // onto one 3-slot ASK tag + 1 leftover bit on a second pass.
    let sym = |b0: bool, b1: bool| (b0 as u8) | ((b1 as u8) << 1);
    let symbols = [
        sym(coded[0], coded[1]),
        sym(coded[2], coded[3]),
        sym(coded[4], coded[5]),
    ];
    println!("ASK symbols (2 bits each): {symbols:?} + 1 residual bit");

    // Over-the-air roundtrip of the symbol tag.
    let ask = AskCode::four_level();
    let tag = ask.encode(&symbols).unwrap();
    let mut drive = DriveBy::new(tag, 3.0).with_seed(4242);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    let dec = decode(
        &outcome.rss_trace,
        Vec3::new(0.0, 3.0, 1.0),
        0.0,
        &ask.geometry,
        &DecoderConfig::default(),
    )
    .expect("decode");
    let got_symbols = ask.classify(&dec.slot_amplitudes);
    println!(
        "decoded symbols: {got_symbols:?} (SNR {:.1} dB)",
        dec.snr_db()
    );
    assert_eq!(got_symbols, symbols.to_vec());

    // Unpack to coded bits, carry the residual bit over, and inject a
    // channel error to show the code healing it.
    let mut rx_coded: Vec<bool> = Vec::new();
    for s in &got_symbols {
        rx_coded.push(s & 1 != 0);
        rx_coded.push(s & 2 != 0);
    }
    rx_coded.push(coded[6]); // the residual 7th bit

    println!("\ninjecting a bit flip at position 2 (a faded coding peak)…");
    rx_coded[2] = !rx_coded[2];

    let (recovered, corrections) = fec::recover(&rx_coded, 4).expect("well-formed coded stream");
    println!(
        "recovered {:?} with {corrections} correction(s)",
        recovered.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );
    assert_eq!(recovered, message.to_vec());

    // Residual reliability at the paper's operating point.
    let raw = ros_dsp::stats::ook_ber(10f64.powf(14.0 / 10.0));
    println!(
        "\nat the paper's 14 dB floor: raw BER {:.2}% → protected block error {:.4}%",
        raw * 100.0,
        fec::block_error_probability(raw) * 100.0
    );
    println!("ASK+FEC link healthy ✓");
}
