//! Design explorer: walk the paper's §4–§5 design rules across the
//! parameter space — pair counts vs bandwidth, beamwidths vs stack
//! size, capacity vs tag width, link budgets per radar grade.
//!
//! ```bash
//! cargo run --release -p ros-examples --bin design_explorer
//! ```

use ros_antenna::design;
use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_em::constants::{F_CENTER_HZ, LAMBDA_CENTER_M};
use ros_em::geom::rad_to_deg;
use ros_em::radar_eq::RadarLinkBudget;

fn main() {
    println!("RoS design explorer");
    println!("===================");

    println!("\n-- optimal Van Atta pairs vs radar bandwidth (§4.1) --");
    println!("{:>12} {:>8}", "B (GHz)", "pairs");
    for b_ghz in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        println!(
            "{b_ghz:>12.1} {:>8}",
            design::optimal_antenna_pairs(b_ghz * 1e9, F_CENTER_HZ)
        );
    }

    println!("\n-- elevation beamwidth vs stack size (Eq. 5) --");
    println!(
        "{:>6} {:>14} {:>22}",
        "rows", "beamwidth (°)", "height tol @3 m (cm)"
    );
    for rows in [4usize, 8, 16, 32, 64] {
        let bw = design::stack_beamwidth_rad(rows, 0.725 * LAMBDA_CENTER_M, LAMBDA_CENTER_M);
        println!(
            "{rows:>6} {:>14.2} {:>22.1}",
            rad_to_deg(bw),
            design::height_tolerance_m(bw, 3.0) * 100.0
        );
    }

    println!("\n-- capacity vs geometry (§5.3) --");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "bits", "width (cm)", "far field (m)", "max speed (m/s)"
    );
    for bits in 1..=8 {
        let code = SpatialCode::with_bits(bits, 32);
        let a = capacity::analyze(&code, 1000.0);
        println!(
            "{bits:>6} {:>12.1} {:>14.1} {:>16.1}",
            a.width_m * 100.0,
            a.far_field_m,
            a.max_speed_mps
        );
    }

    println!("\n-- decode range vs tag build and radar grade --");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "rows", "RCS (dBsm)", "TI range (m)", "commercial (m)"
    );
    let ti = RadarLinkBudget::ti_eval();
    let com = RadarLinkBudget::commercial();
    for rows in [8usize, 16, 32, 64] {
        let rcs = capacity::estimated_tag_rcs_dbsm(5, rows, true);
        println!(
            "{rows:>6} {:>12.1} {:>14.1} {:>16.1}",
            rcs,
            capacity::max_decode_range_m(&ti, rcs),
            capacity::max_decode_range_m(&com, rcs)
        );
    }

    println!("\n-- §8 upgrade paths --");
    println!("· circular-polarized elements recover the 6 dB PSVAA loss → +41% range");
    let rcs_cp = capacity::estimated_tag_rcs_dbsm(5, 32, true) + 6.0;
    println!(
        "  e.g. 32-row tag with CP elements on a commercial radar: {:.0} m",
        capacity::max_decode_range_m(&com, rcs_cp)
    );
    println!("· ASK (multi-level) stacks multiply bits per slot — see `ask_modulation` docs");
}
