//! Full-pipeline drive-by: a cluttered roadside scene processed at the
//! IF level — point clouds, DBSCAN, two-feature tag discrimination,
//! spotlight decode (paper §6, Fig. 11).
//!
//! ```bash
//! cargo run --release -p ros-examples --bin drive_by
//! ```

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::Vec3;
use ros_scene::objects::{ClutterObject, ObjectClass};

fn main() {
    println!("RoS full-pipeline drive-by");
    println!("==========================");

    let message = [true, true, false, true];
    let tag = SpatialCode::paper_4bit()
        .encode(&message)
        .unwrap()
        .with_column_bow(0.0004, 7);

    // A busy curb: parking meter, street lamp, and a pedestrian.
    let drive = DriveBy::new(tag, 3.0)
        .with_clutter(ClutterObject::new(
            ObjectClass::ParkingMeter,
            Vec3::new(-1.8, 3.2, 1.0),
            11,
        ))
        .with_clutter(ClutterObject::new(
            ObjectClass::StreetLamp,
            Vec3::new(1.9, 3.4, 1.0),
            12,
        ))
        .with_clutter(ClutterObject::new(
            ObjectClass::Pedestrian,
            Vec3::new(3.4, 2.8, 1.0),
            13,
        ))
        .with_seed(424242);

    let outcome = drive.run(&ReaderConfig::full());

    println!("\nclusters found: {}", outcome.clusters.len());
    println!(
        "{:>8} {:>8} {:>8} {:>9} {:>10} {:>7}",
        "x (m)", "y (m)", "points", "size (m²)", "loss (dB)", "tag?"
    );
    for c in &outcome.clusters {
        println!(
            "{:>8.2} {:>8.2} {:>8} {:>9.4} {:>10.1} {:>7}",
            c.features.center.x,
            c.features.center.y,
            c.features.n_points,
            c.features.size_m2,
            c.features.rss_loss_db(),
            if c.is_tag { "YES" } else { "no" }
        );
    }

    match outcome.detected_center {
        Some(c) => println!("\ntag detected at ({:.2}, {:.2}) m", c.x, c.y),
        None => println!("\nno tag detected!"),
    }
    println!(
        "decoded bits: {:?} (sent {:?})",
        outcome.bits().iter().map(|&b| b as u8).collect::<Vec<_>>(),
        message.map(|b| b as u8)
    );
    if let Some(snr) = outcome.snr_db() {
        println!("decoding SNR: {snr:.1} dB");
    }
    assert_eq!(outcome.bits(), message.to_vec(), "decode mismatch");
    println!("\nscene decoded correctly ✓");
}
