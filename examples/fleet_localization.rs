//! Fleet patterns: multi-pass fusion and tag-based self-localization.
//!
//! A bus passes the same RoS sign every trip. Single readings at the
//! edge of the link budget are marginal; fusing a day's passes makes
//! them reliable — and because the sign's surveyed position is part of
//! the map, each pass also *calibrates the vehicle's dead reckoning*
//! (the related-work Caraoke idea, §2).
//!
//! ```bash
//! cargo run --release -p ros-examples --bin fleet_localization
//! ```

use ros_core::encode::SpatialCode;
use ros_core::fusion::{fuse_amplitudes, fuse_majority};
use ros_core::localize::{correct_track, estimate_correction, TagObservation};
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_core::signpost::RoadSign;
use ros_em::Vec3;
use ros_scene::tracking::TrackingError;

fn main() {
    println!("RoS fleet patterns");
    println!("==================");

    // -- Part 1: multi-pass fusion at the edge of the link budget --
    let sign = RoadSign::SchoolZone;
    let code = SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    };
    println!(
        "\nsign: {} (codeword {:04b}), 8-row tag read from 4.75 m — past the\nFig. 15 single-pass limit",
        sign.name(),
        sign.codeword()
    );

    let mut passes = Vec::new();
    let mut singles_ok = 0;
    for trip in 0..7u64 {
        let tag = code.encode(&sign.bits()).unwrap();
        let mut drive = DriveBy::new(tag, 4.75).with_seed(8100 + trip);
        drive.half_span_m = 8.0;
        if let Ok(d) = drive.run(&ReaderConfig::fast()).decode {
            if d.bits == sign.bits().to_vec() {
                singles_ok += 1;
            }
            passes.push(d);
        }
    }
    println!("single passes correct: {singles_ok}/{}", passes.len());
    let amp = fuse_amplitudes(&passes);
    let vote = fuse_majority(&passes);
    let amp_sign = RoadSign::from_bits(&amp.bits);
    println!(
        "amplitude-fused: {:?} → {}",
        amp.bits.iter().map(|&b| b as u8).collect::<Vec<_>>(),
        amp_sign.map(|s| s.name()).unwrap_or("??")
    );
    println!(
        "majority-voted:  {:?}",
        vote.bits.iter().map(|&b| b as u8).collect::<Vec<_>>()
    );
    assert_eq!(amp_sign, Some(sign), "fusion failed");

    // -- Part 2: dead-reckoning calibration from a surveyed tag --
    println!("\n-- self-localization against the surveyed sign --");
    let surveyed = Vec3::new(0.0, 3.0, 0.0);
    let tag = SpatialCode::paper_4bit()
        .encode(&sign.bits())
        .unwrap()
        .with_column_bow(0.0004, 1);
    let mut drive = DriveBy::new(tag, 3.0)
        .with_tracking(TrackingError {
            drift: 0.05,
            jitter_m: 0.0,
            seed: 4,
        })
        .with_seed(8200);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    let center = outcome.detected_center.expect("tag detected");
    println!(
        "detected sign at ({:.3}, {:.3}); surveyed at ({:.1}, {:.1})",
        center.x, center.y, surveyed.x, surveyed.y
    );
    let correction = estimate_correction(&[TagObservation {
        observed: Vec3::new(center.x, center.y, 0.0),
        surveyed,
        weight: 1.0,
    }])
    .expect("one weighted observation");
    println!(
        "estimated dead-reckoning bias: ({:.3}, {:.3}) m",
        correction.bias.x, correction.bias.y
    );
    let (_, _, believed) = drive.track(&cfg);
    let corrected = correct_track(&believed, &correction);
    println!(
        "track correction applied to {} poses (e.g. pose[0]: {:.3} → {:.3})",
        corrected.len(),
        believed[0].x,
        corrected[0].x
    );
    println!("\nfleet loop closed ✓");
}
