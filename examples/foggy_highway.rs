//! Adverse weather and radar-grade comparison: decode a tag through
//! fog with the TI evaluation radar versus a commercial automotive
//! radar (paper §7.3 Fig. 16c and §8).
//!
//! ```bash
//! cargo run --release -p ros-examples --bin foggy_highway
//! ```

use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::radar_eq::RadarLinkBudget;
use ros_scene::weather::FogLevel;

fn main() {
    println!("RoS in the fog");
    println!("==============");

    let message = [true, false, false, true];
    let code = SpatialCode::paper_4bit();

    println!("\n-- TI evaluation radar, 3 m standoff --");
    println!("{:>10} {:>10} {:>10}", "fog", "SNR (dB)", "bits ok");
    for fog in FogLevel::ALL {
        let tag = code.encode(&message).unwrap().with_column_bow(0.0004, 3);
        let mut drive = DriveBy::new(tag, 3.0).with_fog(fog).with_seed(99);
        drive.half_span_m = 8.0;
        let o = drive.run(&ReaderConfig::fast());
        println!(
            "{:>10} {:>10.1} {:>10}",
            fog.label(),
            o.snr_db().unwrap_or(f64::NAN),
            if o.bits() == message.to_vec() { "yes" } else { "NO" }
        );
    }

    // Link-budget view: how far could each radar grade read this tag?
    println!("\n-- maximum decode range (link budget, σ = −23 dBsm) --");
    let ti = RadarLinkBudget::ti_eval();
    let commercial = RadarLinkBudget::commercial();
    println!(
        "TI eval radar:     {:>5.1} m (noise floor {:.1} dBm)",
        capacity::max_decode_range_m(&ti, -23.0),
        ti.noise_floor_dbm()
    );
    println!(
        "commercial radar:  {:>5.1} m (N_F 9 dB, EIRP 50 dBm — paper §8)",
        capacity::max_decode_range_m(&commercial, -23.0)
    );

    // Fog barely matters at these ranges: quantify the margin.
    println!("\n-- two-way fog loss at reading distance --");
    for d in [3.0, 6.0, 52.0] {
        let loss = ros_em::atten::fog_round_trip_db(FogLevel::Heavy, d);
        println!("{d:>5.0} m: {loss:.2} dB (heavy fog)");
    }
    println!("\nradar reads road signs when cameras cannot ✓");
}
