//! Multi-tag advertising board: two 4-bit tags side by side convey an
//! 8-bit message (paper §5.3: "RoS can instead place multiple tags
//! side by side similar to advertising boards"; §7.3 Fig. 16a shows
//! the cross-tag interference is negligible).
//!
//! ```bash
//! cargo run --release -p ros-examples --bin multi_tag_board
//! ```

use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::Vec3;

fn main() {
    println!("RoS multi-tag board: 8 bits from two 4-bit tags");
    println!("===============================================");

    let code = SpatialCode::paper_4bit();
    let word: [bool; 8] = [true, false, true, true, false, true, false, false];
    let (lo, hi) = word.split_at(4);

    // §5.3: tags must sit ≥1.53 m apart for a 4-Rx radar at 6 m; at a
    // 3 m reading distance half of that suffices. Use 1.6 m.
    let analysis = capacity::analyze(&code, 1000.0);
    let spacing = analysis.min_tag_separation_m.max(1.6);
    println!(
        "tag spacing {spacing:.2} m (§5.3 minimum at 6 m: {:.2} m)",
        analysis.min_tag_separation_m
    );

    let standoff = 3.0;
    let tag_a = code.encode(lo).unwrap().with_column_bow(0.0004, 1);
    let tag_b = code
        .encode(hi)
        .unwrap()
        .with_column_bow(0.0004, 2)
        .mounted_at(Vec3::new(spacing, standoff, 1.0));

    // Decode tag A with tag B present…
    let mut cfg = ReaderConfig::fast();
    cfg.frame_stride = 1; // dense sampling keeps cross-tag fringes above Nyquist
    cfg.decoder.n_grid = 4096;
    let drive_a = DriveBy::new(tag_a.clone(), standoff)
        .with_extra_tag(tag_b.clone())
        .with_seed(501);
    let out_a = drive_a.run(&cfg);

    // …and tag B with tag A present (swap roles; B's drive-by centres
    // on B's mount, so rebuild with B primary).
    let tag_b_primary = code.encode(hi).unwrap().with_column_bow(0.0004, 2);
    let tag_a_extra = code
        .encode(lo)
        .unwrap()
        .with_column_bow(0.0004, 1)
        .mounted_at(Vec3::new(-spacing, standoff, 1.0));
    let drive_b = DriveBy::new(tag_b_primary, standoff)
        .with_extra_tag(tag_a_extra)
        .with_seed(502);
    let out_b = drive_b.run(&cfg);

    let b2u = |bits: &[bool]| bits.iter().map(|&b| b as u8).collect::<Vec<_>>();
    println!("\ntag A sent {:?} decoded {:?} (SNR {:.1} dB)",
        b2u(lo), b2u(out_a.bits()), out_a.snr_db().unwrap_or(f64::NAN));
    println!("tag B sent {:?} decoded {:?} (SNR {:.1} dB)",
        b2u(hi), b2u(out_b.bits()), out_b.snr_db().unwrap_or(f64::NAN));

    let mut decoded = out_a.bits().to_vec();
    decoded.extend_from_slice(out_b.bits());
    assert_eq!(decoded, word.to_vec(), "8-bit word mismatch");
    println!("\n8-bit word recovered: {:?} ✓", b2u(&decoded));
}
