//! Quickstart: encode four bits on a RoS tag, drive a simulated TI
//! radar past it, and decode them.
//!
//! ```bash
//! cargo run --release -p ros-examples --bin quickstart
//! ```

use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};

fn main() {
    // The paper's 4-bit code: M = 5 stack slots at δc = 1.5λ, 32
    // beam-shaped PSVAAs per stack (Fig. 12a).
    let code = SpatialCode::paper_4bit();
    let message = [true, false, true, true];
    let tag = code.encode(&message).expect("4 bits fit a 4-bit code");

    println!("RoS quickstart");
    println!("==============");
    println!(
        "tag: {} stacks on a {:.1} cm surface, encoding {:?}",
        tag.stack_positions_m().len(),
        code.width_m() * 100.0,
        message.map(|b| b as u8)
    );
    let analysis = capacity::analyze(&code, 1000.0);
    println!(
        "far field {:.1} m · max speed {:.0} m/s · stack height {:.1} cm",
        analysis.far_field_m,
        analysis.max_speed_mps,
        tag.height_m() * 100.0
    );

    // Drive by at 3 m standoff (one lane over) with the TI-class radar.
    let outcome = DriveBy::new(tag, 3.0).run(&ReaderConfig::fast());

    let decoded: Vec<u8> = outcome.bits().iter().map(|&b| b as u8).collect();
    println!("\ndecoded bits: {decoded:?}");
    match &outcome.decode {
        Ok(d) => {
            println!("decoding SNR: {:.1} dB (BER {:.3}%)", d.snr_db(), d.ber() * 100.0);
            println!(
                "coding-slot amplitudes: {:?}",
                d.slot_amplitudes
                    .iter()
                    .map(|a| (a * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
        }
        Err(e) => println!("decoding failed: {e}"),
    }
    assert_eq!(outcome.bits(), message.to_vec(), "round trip failed");
    println!("\nround trip OK ✓");
}
