//! The zero-allocation steady-state budget (the plan/arena contract).
//!
//! DESIGN.md §14: after a warm-up pass has resolved every FFT/CZT/
//! window plan and grown every scratch buffer to its high-water mark,
//! a steady-state frame — capture → detect → spotlight → decode — must
//! perform **zero** heap allocations. This test pins that budget with
//! a counting global allocator: warm-up runs the exact per-frame work
//! that the measured rounds repeat (same job seeds, same trace, both
//! the FFT and CZT decode configurations), so every buffer capacity
//! the measurement needs has already been reached, and any allocation
//! observed afterwards is a real hot-path regression.
//!
//! This file intentionally contains a single `#[test]`: the harness
//! runs tests of one binary concurrently, and a sibling test's setup
//! allocations would pollute the process-global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_core::decode::{decode_into, DecodeResult, DecodeScratch, DecoderConfig, RssSample};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_dsp::window::{Window, WindowTable};
use ros_em::{Complex64, Vec3};
use ros_radar::echo::{Echo, Pose};
use ros_radar::frontend::Frame;
use ros_radar::pointcloud::RadarPoint;
use ros_radar::processing::DetectScratch;
use ros_radar::radar::{CaptureScratch, FmcwRadar};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Per-iteration capture seeds. Warm-up and measurement cycle through
/// the same set, so the noise realizations (and therefore the CFAR
/// detection counts and buffer high-water marks) the measurement sees
/// are exactly the ones warm-up already sized for.
const CAPTURE_SEEDS: [u64; 4] = [0xA110_C0, 0xA110_C1, 0xA110_C2, 0xA110_C3];

/// Every long-lived buffer of the steady-state frame loop.
struct Arena {
    capture: CaptureScratch,
    frames: Vec<Frame>,
    detect: DetectScratch,
    points: Vec<RadarPoint>,
    decode: DecodeScratch,
    result: DecodeResult,
}

/// The fixed (read-only) inputs of one steady-state frame.
struct Fixture {
    radar: FmcwRadar,
    jobs: Vec<(Pose, Vec<Echo>)>,
    spot_table: WindowTable,
    spot_target: Vec3,
    trace: Vec<RssSample>,
    tag_center: Vec3,
    code: SpatialCode,
    configs: [DecoderConfig; 2],
}

fn capture_jobs() -> Vec<(Pose, Vec<Echo>)> {
    (0..4)
        .map(|i| {
            let echoes: Vec<Echo> = (0..6)
                .map(|k| {
                    Echo::new(
                        Vec3::new(-0.8 + 0.3 * k as f64, 2.4 + 0.05 * i as f64, 0.0),
                        Complex64::from_polar(ros_em::db::db_to_lin(-40.0), 0.29 * k as f64),
                    )
                })
                .collect();
            (
                Pose::side_looking(Vec3::new(0.05 * i as f64, 0.0, 0.0)),
                echoes,
            )
        })
        .collect()
}

/// Builds the decoder input the canonical way: a fast-mode drive-by of
/// a 2-bit tag, reusing its RSS trace verbatim.
fn drive_by_trace() -> (Vec<RssSample>, Vec3, SpatialCode) {
    let code = SpatialCode::with_bits(2, 8);
    let tag = code.encode(&[true, true]).expect("2-bit word encodes");
    let center = Vec3::new(0.0, 2.0, 1.0);
    let outcome = DriveBy::new(tag, 2.0)
        .with_seed(0x90_1DE2)
        .run(&ReaderConfig::fast());
    (outcome.rss_trace, center, code)
}

/// One steady-state frame: batch capture, per-frame detection and
/// spotlight, then a decode per configuration. Returns a value folded
/// from every stage so nothing is optimized away.
fn steady_frame(fx: &Fixture, seed: u64, arena: &mut Arena) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    fx.radar
        .capture_batch_with(&fx.jobs, &mut rng, &mut arena.capture, &mut arena.frames);
    let mut acc = 0.0;
    for frame in arena.frames.iter() {
        fx.radar.detect_with(frame, &mut arena.detect, &mut arena.points);
        for p in arena.points.iter() {
            acc += p.power_mw;
        }
        acc += fx.radar.spotlight_with(frame, fx.spot_target, &fx.spot_table).abs();
    }
    for cfg in &fx.configs {
        decode_into(
            &fx.trace,
            fx.tag_center,
            0.0,
            &fx.code,
            cfg,
            &mut arena.decode,
            &mut arena.result,
        )
        .expect("steady-state decode stays on the success path");
        acc += arena.result.snr_linear;
    }
    acc
}

#[test]
fn steady_state_frame_allocates_nothing() {
    // Pin the executor to one worker *before* any measurement: the
    // override short-circuits `ros_exec::threads()` ahead of its
    // `env::var` lookup (which allocates), and one worker keeps the
    // serial fast path — no thread spawns inside the loop.
    let _pin = ros_exec::ThreadGuard::pin(Some(1));
    ros_obs::set_level(ros_obs::Level::Off);

    let radar = FmcwRadar::ti_eval();
    let (trace, tag_center, code) = drive_by_trace();
    let fx = Fixture {
        spot_table: WindowTable::new(Window::Hann, radar.chirp.n_samples),
        spot_target: Vec3::new(0.0, 2.5, 0.0),
        radar,
        jobs: capture_jobs(),
        trace,
        tag_center,
        code,
        configs: [
            DecoderConfig::default(),
            DecoderConfig {
                use_czt: true,
                ..DecoderConfig::default()
            },
        ],
    };
    let mut arena = Arena {
        capture: CaptureScratch::default(),
        frames: Vec::new(),
        detect: DetectScratch::default(),
        points: Vec::new(),
        decode: DecodeScratch::new(),
        result: DecodeResult::default(),
    };

    // Warm-up: one full cycle over the capture seeds resolves every
    // plan (FFT, CZT, window tables) and grows every buffer to the
    // sizes the measured rounds will revisit.
    let mut warm = 0.0;
    for &seed in &CAPTURE_SEEDS {
        warm += steady_frame(&fx, seed, &mut arena);
    }
    assert!(warm.is_finite() && warm != 0.0, "warm-up produced no work");

    // Measurement: two more cycles over the same seeds must not touch
    // the heap at all.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut measured = 0.0;
    for _round in 0..2 {
        for &seed in &CAPTURE_SEEDS {
            measured += std::hint::black_box(steady_frame(&fx, seed, &mut arena));
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(measured.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state frames allocated {} time(s); the plan/arena \
         contract requires capture → detect → spotlight → decode to \
         run allocation-free after warm-up",
        after - before
    );
}
