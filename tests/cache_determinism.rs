//! Cache-temperature determinism proofs (ISSUE 9 satellite 1).
//!
//! The `ros-cache` memoization layer must be invisible to physics:
//! a decode through a fresh cache, a pre-warmed cache, or a
//! capacity-1 cache that thrashes on every lookup must produce reads
//! that are `to_bits`-identical to the uncached path — at 1, 2, and
//! 8 executor threads. Any divergence means a cache key is missing
//! an input (two different tables aliased to one key) or a build
//! closure is impure.

use ros_cache::GeomCache;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, ReaderConfig};
use ros_core::tag::Tag;
use ros_serve::{run_corridor_uncached, run_corridor_with, CorridorConfig};
use std::sync::Mutex;

/// Serializes thread-pinning tests (ThreadGuard state is global).
static LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _pin = ros_exec::ThreadGuard::pin(Some(n));
    f()
}

/// The golden-fixture drive-by (same shape as `golden_decode.rs`):
/// a 2-bit, 8-row beam-shaped tag at 2 m standoff, frozen seed.
fn golden_drive(tag: Tag) -> Outcome {
    DriveBy::new(tag, 2.0)
        .with_seed(0x90_1DE2)
        .run(&ReaderConfig::fast())
}

/// Everything bit-relevant about an outcome, with floats captured as
/// raw bit patterns so "close enough" can never pass.
fn fingerprint(o: &Outcome) -> (Vec<bool>, Option<u64>, Vec<u64>, Vec<u64>) {
    let amps: Vec<u64> = o
        .decode
        .as_ref()
        .map(|d| d.slot_amplitudes.iter().map(|a| a.to_bits()).collect())
        .unwrap_or_default();
    let trace: Vec<u64> = o
        .rss_trace
        .iter()
        .flat_map(|r| [r.rss.re.to_bits(), r.rss.im.to_bits()])
        .collect();
    (o.bits().to_vec(), o.snr_db().map(f64::to_bits), amps, trace)
}

/// The three cache temperatures under test, plus the uncached
/// reference: fresh, pre-warmed (every table already resident), and a
/// capacity-1 cache that evicts on every second distinct key.
fn tag_at_every_temperature(code: &SpatialCode, bits: &[bool]) -> Vec<(&'static str, Tag)> {
    let fresh = GeomCache::new();
    let warm = GeomCache::new();
    // Warm the second cache by building the identical design once.
    let _ = code.encode_with(&warm, bits).expect("warmup encodes");
    let thrash = GeomCache::with_capacity(1);
    vec![
        ("uncached", code.encode(bits).expect("encodes")),
        ("fresh", code.encode_with(&fresh, bits).expect("encodes")),
        ("pre-warmed", code.encode_with(&warm, bits).expect("encodes")),
        ("capacity-1", code.encode_with(&thrash, bits).expect("encodes")),
    ]
}

#[test]
fn golden_drive_by_is_bit_identical_across_cache_temperatures() {
    let code = SpatialCode::with_bits(2, 8);
    let bits = [true, true];
    let tags = tag_at_every_temperature(&code, &bits);
    for threads in [1usize, 2, 8] {
        let outcomes: Vec<_> = with_threads(threads, || {
            tags.iter()
                .map(|(name, tag)| (*name, fingerprint(&golden_drive(tag.clone()))))
                .collect()
        });
        let (_, reference) = &outcomes[0];
        assert_eq!(reference.0, vec![true, true], "fixture must decode");
        for (name, fp) in &outcomes[1..] {
            assert_eq!(fp, reference, "{name} cache diverged at {threads} threads");
        }
    }
}

/// A capacity-1 cache evicts between the shaping and scatterer-table
/// lookups of a single pass — the worst possible thrashing — and the
/// decode is still bit-identical frame by frame.
#[test]
fn thrashing_cache_rebuilds_but_never_drifts() {
    let code = SpatialCode::with_bits(2, 8);
    let thrash = GeomCache::with_capacity(1);
    let reference = fingerprint(&golden_drive(code.encode(&[true, true]).expect("encodes")));
    for _ in 0..3 {
        let tag = code.encode_with(&thrash, &[true, true]).expect("encodes");
        assert_eq!(fingerprint(&golden_drive(tag)), reference);
    }
    let stats = thrash.snapshot();
    assert!(stats.evictions() > 0, "capacity 1 must evict");
    assert!(thrash.len() <= 1, "capacity bound holds");
}

// ---------------------------------------------------------------------
// Corridor slice: the service-level proof.
// ---------------------------------------------------------------------

fn corridor() -> CorridorConfig {
    CorridorConfig {
        n_radars: 2,
        n_vehicles: 2,
        n_tags: 1,
        channel_capacity: 32,
        chunk_frames: 64,
        ..CorridorConfig::default()
    }
}

/// The corridor read log is digest-identical across cache
/// temperatures and worker counts simultaneously.
#[test]
fn corridor_log_is_invariant_to_cache_temperature_and_workers() {
    let cfg = corridor();
    let reference = with_threads(1, || run_corridor_uncached(&cfg, 1));
    assert!(reference.decoded_reads() >= 1, "smoke floor: >= 1 decode");

    let warm = GeomCache::new();
    let _ = run_corridor_with(&cfg, 1, &warm); // pre-warm every table
    for workers in [1usize, 2, 8] {
        let runs = with_threads(workers, || {
            let fresh = run_corridor_with(&cfg, workers, &GeomCache::new());
            let warmed = run_corridor_with(&cfg, workers, &warm);
            let thrashed = run_corridor_with(&cfg, workers, &GeomCache::with_capacity(1));
            [("fresh", fresh), ("pre-warmed", warmed), ("capacity-1", thrashed)]
        });
        for (name, r) in &runs {
            assert_eq!(
                r.log(),
                reference.log(),
                "{name} cache diverged at {workers} workers"
            );
            assert_eq!(r.log_digest(), reference.log_digest(), "{name}/{workers}");
        }
        // The pre-warmed cache serves every lookup from memory.
        let (_, warmed) = &runs[1];
        assert_eq!(warmed.cache_misses, 0, "warm run must not rebuild");
        assert!(warmed.cache_hits > 0, "warm run must actually hit");
    }
}
