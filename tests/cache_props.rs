//! Property tests for the `ros-cache` structural key and eviction
//! order (ISSUE 9 satellite 2).
//!
//! The key contract: two inputs map to the same key if and only if
//! they are structurally identical — every `f64` compared by exact
//! bit pattern, every slice by length and element order. The store
//! contract: eviction follows insertion order deterministically, so
//! replaying an interleaved insert/get sequence reproduces the same
//! resident set and the same statistics.

use proptest::prelude::*;
use ros_cache::{GeomCache, Key, KeyBuilder, TableKind};
use std::sync::Arc;

/// Builds the canonical test key for a slice of raw f64 bit patterns.
fn slice_key(bits: &[u64]) -> Key {
    let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
    KeyBuilder::new("props.slice").f64s(&vals).finish()
}

/// One step of an interleaved cache workload: `(true, k)` touches key
/// `k` (a `get_or_build`, which is a hit when resident and an insert
/// when not); `(false, k)` probes it without mutating (`contains`).
type Op = (bool, u8);

fn small_key(i: u8) -> Key {
    KeyBuilder::new("props.evict").u64(u64::from(i)).finish()
}

/// Applies a workload to a fresh capacity-bounded cache and returns
/// its observable end state: which keys are resident, plus the
/// hit/miss/insert/evict totals.
fn replay(ops: &[Op], capacity: usize) -> (Vec<bool>, u64, u64, u64, u64) {
    let cache = GeomCache::with_capacity(capacity);
    for &(touch, i) in ops {
        if touch {
            let v: Arc<u8> = cache.get_or_build(TableKind::Pattern, small_key(i), || i);
            assert_eq!(*v, i, "a cache read must return the built value");
        } else {
            let _ = cache.contains(&small_key(i));
        }
    }
    let resident: Vec<bool> = (0u8..12).map(|i| cache.contains(&small_key(i))).collect();
    let s = cache.snapshot();
    (resident, s.hits(), s.misses(), s.inserts(), s.evictions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structurally equal inputs produce equal keys, always.
    #[test]
    fn equal_inputs_equal_key(bits in prop::collection::vec(any::<u64>(), 0..32)) {
        prop_assert_eq!(slice_key(&bits), slice_key(&bits.clone()));
    }

    /// Flipping any single bit of any single element produces a
    /// distinct key — f64s are keyed by exact bit pattern, so even
    /// NaN-payload and signed-zero changes separate.
    #[test]
    fn any_single_bit_flip_changes_the_key(
        bits in prop::collection::vec(any::<u64>(), 1..32),
        idx in any::<usize>(),
        bit in 0u8..64,
    ) {
        let i = idx % bits.len();
        let mut flipped = bits.clone();
        flipped[i] ^= 1u64 << bit;
        prop_assert_ne!(slice_key(&bits), slice_key(&flipped));
    }

    /// Changing the slice length produces a distinct key even when
    /// the shared prefix is identical (length is part of the key).
    #[test]
    fn length_is_part_of_the_key(
        bits in prop::collection::vec(any::<u64>(), 1..32),
        extra in any::<u64>(),
    ) {
        let mut longer = bits.clone();
        longer.push(extra);
        prop_assert_ne!(slice_key(&bits), slice_key(&longer));
        prop_assert_ne!(slice_key(&bits), slice_key(&bits[..bits.len() - 1]));
    }

    /// Swapping two unequal adjacent elements produces a distinct key
    /// (element order is structural, not a multiset).
    #[test]
    fn element_order_is_part_of_the_key(
        bits in prop::collection::vec(any::<u64>(), 2..32),
        idx in any::<usize>(),
    ) {
        let i = idx % (bits.len() - 1);
        prop_assume!(bits[i] != bits[i + 1]);
        let mut swapped = bits.clone();
        swapped.swap(i, i + 1);
        prop_assert_ne!(slice_key(&bits), slice_key(&swapped));
    }

    /// Replaying the same interleaved insert/get workload on two
    /// fresh caches reproduces the same resident set and the same
    /// counters: eviction order is a pure function of the op
    /// sequence, never of hash values or thread scheduling.
    #[test]
    fn eviction_order_is_deterministic(
        ops in prop::collection::vec((any::<bool>(), 0u8..12), 0..64),
        capacity in 1usize..6,
    ) {
        let a = replay(&ops, capacity);
        let b = replay(&ops, capacity);
        prop_assert_eq!(&a, &b);
        let resident = a.0.iter().filter(|&&r| r).count();
        prop_assert!(resident <= capacity, "capacity bound violated");
        // Conservation: every resident entry was inserted and every
        // insert not evicted is still resident.
        prop_assert_eq!(a.3 - a.4, ros_em::units::cast::u64_from_usize(resident));
    }
}
