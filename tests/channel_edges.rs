//! Edge-case tests for the `ros_exec::channel` seams (ISSUE 10
//! satellite 4): every disconnect and misconfiguration path returns a
//! typed result — `Err(value)` handing the rejected item back, `None`
//! on drain-after-disconnect, `ChannelError::ZeroCapacity` at
//! construction — and none of them panics.

use ros_exec::channel::{bounded, try_bounded, ChannelError};

#[test]
fn send_after_receiver_drop_hands_every_value_back() {
    let (tx, rx) = bounded::<u64>(2);
    drop(rx);
    // Repeated sends keep failing fast with the value intact — no
    // panic, no silent drop, no block on the full-buffer path.
    for i in 0..10 {
        assert_eq!(tx.send(i), Err(i));
    }
    // A clone of the sender sees the same disconnect.
    let tx2 = tx.clone();
    assert_eq!(tx2.send(99), Err(99));
}

#[test]
fn recv_after_sender_drop_drains_buffer_then_signals_end() {
    let (tx, rx) = bounded::<u64>(4);
    tx.send(1).map_err(|_| "receiver gone").unwrap();
    tx.send(2).map_err(|_| "receiver gone").unwrap();
    let tx2 = tx.clone();
    drop(tx);
    tx2.send(3).map_err(|_| "receiver gone").unwrap();
    drop(tx2);
    // Buffered items survive the disconnect in order; only then does
    // the channel report the end — and keeps reporting it.
    assert_eq!(rx.recv(), Some(1));
    assert_eq!(rx.recv(), Some(2));
    assert_eq!(rx.recv(), Some(3));
    assert_eq!(rx.recv(), None);
    assert_eq!(rx.recv(), None, "end of stream is sticky");
}

#[test]
fn zero_capacity_is_a_typed_construction_error() {
    assert_eq!(
        try_bounded::<u64>(0).map(|_| ()),
        Err(ChannelError::ZeroCapacity)
    );
    // The error is plain data: comparable, copyable, debuggable.
    let e = ChannelError::ZeroCapacity;
    let e2 = e;
    assert_eq!(format!("{e2:?}"), "ZeroCapacity");
    // The infallible constructor keeps its clamping contract for
    // internal call sites.
    let (tx, rx) = bounded::<u64>(0);
    assert_eq!(tx.stats().capacity, 1);
    tx.send(5).map_err(|_| "receiver gone").unwrap();
    drop(tx);
    assert_eq!(rx.recv(), Some(5));
    assert_eq!(rx.recv(), None);
}
