//! Graceful-degradation coverage: the pathological ends of the fault
//! space must come back as *typed* outcomes — `PassVerdict::NoTag`,
//! `PassVerdict::PartialDecode` — never as a panic or a NaN leaking
//! out of the pipeline.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, PassVerdict, ReaderConfig};
use ros_core::tag::Tag;
use ros_fault::{CorruptionMode, FaultKind, FaultPlan};

fn tag8() -> Tag {
    SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    }
    .encode_with(ros_tests::fixture_cache(), &[true, false, true, true])
    .unwrap()
}

/// The frozen full-pipeline fixture (mirrors `tests/obs_trace.rs`).
fn full_fixture() -> (DriveBy, ReaderConfig) {
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let tag = code.encode_with(ros_tests::fixture_cache(), &[true, false, true, true]).unwrap();
    let mut drive = DriveBy::new(tag, 3.0).with_seed(90125);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    (drive, cfg)
}

/// No NaN/Inf may escape through any numeric field of the outcome.
fn assert_finite(o: &Outcome, label: &str) {
    for (i, s) in o.rss_trace.iter().enumerate() {
        assert!(
            s.rss.re.is_finite() && s.rss.im.is_finite(),
            "{label}: non-finite RSS sample at index {i}"
        );
    }
    if let Ok(d) = &o.decode {
        for (i, a) in d.slot_amplitudes.iter().enumerate() {
            assert!(
                a.is_finite(),
                "{label}: non-finite slot amplitude at slot {i}"
            );
        }
    }
    if let Some(snr) = o.snr_db() {
        assert!(snr.is_finite(), "{label}: non-finite SNR");
    }
}

#[test]
fn all_frames_dropped_in_fast_mode_is_typed_no_tag() {
    let drive = DriveBy::new(tag8(), 2.0)
        .with_seed(3)
        .with_faults(FaultPlan::single(1, FaultKind::FrameDrop, 1.0));
    let o = drive.run(&ReaderConfig::fast());
    assert_eq!(o.verdict, PassVerdict::NoTag);
    assert!(o.bits().is_empty(), "dropped pass must decode no bits");
    assert!(o.rss_trace.is_empty(), "dropped pass must sample nothing");
    assert!(o.frame_verdicts.iter().all(|v| v.dropped));
    assert_finite(&o, "all-dropped fast");
}

#[test]
fn all_frames_dropped_in_full_mode_is_typed_no_tag() {
    let (base, cfg) = full_fixture();
    let o = base
        .with_faults(FaultPlan::single(1, FaultKind::FrameDrop, 1.0))
        .run(&cfg);
    assert_eq!(o.verdict, PassVerdict::NoTag);
    assert!(o.detected_center.is_none());
    assert!(o.bits().is_empty());
    assert_finite(&o, "all-dropped full");
}

#[test]
fn all_nan_point_cloud_degrades_without_panicking() {
    let (base, cfg) = full_fixture();
    let plan = FaultPlan::single(
        2,
        FaultKind::PointCorruption {
            mode: CorruptionMode::NaN,
        },
        1.0,
    );
    let o = base.with_faults(plan).run(&cfg);
    // Every native frame feeds DBSCAN nothing but NaN ranges, so the
    // detector must fail *typed* — and nothing downstream may go
    // non-finite.
    assert!(
        o.detected_center.is_none(),
        "an all-NaN cloud must not localize a tag"
    );
    assert_eq!(o.verdict, PassVerdict::NoTag);
    assert_finite(&o, "all-NaN cloud");
    if let Some(c) = o.detected_center {
        assert!(c.x.is_finite() && c.y.is_finite() && c.z.is_finite());
    }
}

#[test]
fn all_inf_point_cloud_degrades_without_panicking() {
    let (base, cfg) = full_fixture();
    let plan = FaultPlan::single(
        2,
        FaultKind::PointCorruption {
            mode: CorruptionMode::Inf,
        },
        1.0,
    );
    let o = base.with_faults(plan).run(&cfg);
    assert!(o.detected_center.is_none());
    assert_eq!(o.verdict, PassVerdict::NoTag);
    assert_finite(&o, "all-Inf cloud");
}

#[test]
fn hard_adc_saturation_in_fast_mode_stays_finite_and_typed() {
    // A full-scale rail far below the echo level clips every frame to
    // the same tiny square-wave — decoding may fail or partially
    // succeed, but the verdict must be typed and all numbers finite.
    let drive = DriveBy::new(tag8(), 2.0).with_seed(5).with_faults(
        FaultPlan::single(7, FaultKind::AdcSaturation { full_scale: 1e-9 }, 1.0),
    );
    let o = drive.run(&ReaderConfig::fast());
    assert_finite(&o, "saturated fast");
    assert!(o.frame_verdicts.iter().all(|v| v.saturated));
    match &o.verdict {
        PassVerdict::Clean | PassVerdict::NoTag => {}
        PassVerdict::PartialDecode {
            bits_resolved,
            erasures,
        } => {
            assert!(!erasures.is_empty());
            assert_eq!(bits_resolved + erasures.len(), o.bits().len());
        }
    }
}

#[test]
fn hard_adc_saturation_in_full_mode_stays_finite_and_typed() {
    let (base, cfg) = full_fixture();
    let o = base
        .with_faults(FaultPlan::single(
            7,
            FaultKind::AdcSaturation { full_scale: 1e-9 },
            1.0,
        ))
        .run(&cfg);
    assert_finite(&o, "saturated full");
    // The clipped IF stream carries no tag signature above threshold,
    // so whatever the detector concludes must be expressible as a
    // typed verdict (the match is exhaustive by construction).
    let _ = &o.verdict;
}

#[test]
fn wide_erasure_margin_yields_partial_decode_with_consistent_counts() {
    // Inflating the erasure dead-zone to swallow the whole amplitude
    // range forces every slot into the erasure set: the canonical
    // PartialDecode outcome, with no fault plan involved at all.
    let drive = DriveBy::new(tag8(), 2.0).with_seed(11);
    let mut cfg = ReaderConfig::fast();
    cfg.decoder.erasure_margin = 50.0;
    let o = drive.run(&cfg);
    match &o.verdict {
        PassVerdict::PartialDecode {
            bits_resolved,
            erasures,
        } => {
            assert!(!erasures.is_empty());
            assert_eq!(bits_resolved + erasures.len(), o.bits().len());
            assert!(erasures.iter().all(|&slot| slot < o.bits().len()));
        }
        other => panic!("expected PartialDecode, got {other:?}"),
    }
    assert!(o.verdict.is_degraded());
    assert_finite(&o, "wide erasure margin");
}

#[test]
fn duplicated_every_frame_doubles_the_trace_and_still_decodes() {
    let clean = DriveBy::new(tag8(), 2.0).with_seed(13);
    let doubled = clean
        .clone()
        .with_faults(FaultPlan::single(17, FaultKind::FrameDuplicate, 1.0));
    let cfg = ReaderConfig::fast();
    let a = clean.run(&cfg);
    let b = doubled.run(&cfg);
    assert_eq!(b.rss_trace.len(), 2 * a.rss_trace.len());
    assert!(b.frame_verdicts.iter().all(|v| v.duplicated));
    assert_finite(&b, "all-duplicated fast");
}

#[test]
fn empty_and_nan_sample_streams_decode_to_typed_errors() {
    use ros_core::decode::{decode, DecodeError, DecoderConfig, RssSample};
    use ros_em::{Complex64, Vec3};

    let code = SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    };
    let center = Vec3::new(0.0, 2.0, 0.0);
    let cfg = DecoderConfig::default();

    let err = decode(&[], center, 0.0, &code, &cfg).unwrap_err();
    assert!(matches!(err, DecodeError::TooFewSamples { got: 0 }));

    // A stream that is *all* NaN must be filtered down to the same
    // typed error, not resampled into a garbage spectrum.
    let poisoned: Vec<RssSample> = (0..64)
        .map(|i| RssSample {
            radar_pos: Vec3::new(-2.0 + 0.0625 * f64::from(i), 0.0, 0.0),
            rss: Complex64::new(f64::NAN, f64::NAN),
        })
        .collect();
    let err = decode(&poisoned, center, 0.0, &code, &cfg).unwrap_err();
    assert!(matches!(err, DecodeError::TooFewSamples { .. }));
}
