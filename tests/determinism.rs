//! Bit-reproducibility of every pipeline path wired into the
//! [`ros_exec`] scoped-thread executor.
//!
//! The contract (DESIGN.md §9): parallel output is **bit-identical**
//! (`f64::to_bits`) to the one-thread run at *any* worker count. Each
//! test runs a path at 1, 2, and 8 threads and compares against the
//! 1-thread reference. Random draws never move into workers — RNG
//! packets are pre-drawn serially in the historical order, so the
//! streams are unchanged too.
//!
//! The executor override is process-global; the shared [`LOCK`]
//! serializes these tests within the binary, and the RAII
//! [`ros_exec::ThreadGuard`] restores the default (`ROS_EXEC_THREADS`
//! / core count) even on panic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ros_core::decode::{decode, decode_into, DecodeResult, DecodeScratch, DecoderConfig, RssSample};
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, ReaderConfig};
use ros_core::rcs_model;
use ros_core::tag::Tag;
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::jones::Polarization;
use ros_em::{Complex64, Vec3};
use ros_exec::ParSeed;
use ros_optim::{minimize_par, DeConfig, Strategy};
use ros_radar::echo::{Echo, Pose};
use ros_radar::pointcloud::RadarPoint;
use ros_radar::processing::DetectScratch;
use ros_radar::radar::{CaptureScratch, FmcwRadar};
use ros_scene::reflector::{EchoContext, Reflector};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// The worker counts every path is checked at (1 is the reference).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` with the executor pinned to `n` workers, holding the
/// global lock and restoring the default afterwards (even on panic).
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _pin = ros_exec::ThreadGuard::pin(Some(n));
    f()
}

fn assert_f64_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

fn assert_complex_bits_eq(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re {i} differs");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im {i} differs");
    }
}

#[test]
fn par_map_preserves_order_and_values() {
    let items: Vec<u64> = (0..103).collect();
    let serial: Vec<f64> = items.iter().map(|&x| (x as f64 + 0.5).sqrt().sin()).collect();
    for n in THREAD_COUNTS {
        let par = with_threads(n, || {
            ros_exec::par_map(&items, |&x| (x as f64 + 0.5).sqrt().sin())
        });
        assert_f64_bits_eq(&serial, &par, &format!("par_map@{n}"));

        let indexed = with_threads(n, || {
            ros_exec::par_map_indexed(&items, |i, &x| i as f64 * 1e-3 + (x as f64).cos())
        });
        let expect: Vec<f64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| i as f64 * 1e-3 + (x as f64).cos())
            .collect();
        assert_f64_bits_eq(&expect, &indexed, &format!("par_map_indexed@{n}"));
    }
}

#[test]
fn par_seed_streams_are_stable_and_distinct() {
    let seed = ParSeed::new(0xD00D_F00D);
    let streams: Vec<u64> = (0..64).map(|i| seed.stream(i)).collect();
    // Deterministic: same derivation twice.
    let again: Vec<u64> = (0..64).map(|i| seed.stream(i)).collect();
    assert_eq!(streams, again);
    // Distinct across indices and from the substream space.
    for i in 0..64 {
        for j in 0..64 {
            if i != j {
                assert_ne!(streams[i], streams[j], "stream collision {i}/{j}");
            }
            assert_ne!(
                streams[i],
                seed.substream(1, j as u64),
                "stream/substream collision {i}/{j}"
            );
        }
    }
}

#[test]
fn rcs_u_grid_bit_identical_across_thread_counts() {
    // n > PAR_GRID_THRESHOLD so the parallel branch actually engages.
    let positions: Vec<f64> = (0..9).map(|k| 0.055 * k as f64).collect();
    let n = 4096;
    let reference = with_threads(1, || {
        rcs_model::sample_rcs_factor(&positions, LAMBDA_CENTER_M, 1.0, n)
    });
    for t in THREAD_COUNTS {
        let par = with_threads(t, || {
            rcs_model::sample_rcs_factor(&positions, LAMBDA_CENTER_M, 1.0, n)
        });
        assert_f64_bits_eq(&reference, &par, &format!("sample_rcs_factor@{t}"));
    }
}

#[test]
fn de_minimize_par_bit_identical_across_thread_counts() {
    let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
    let bounds = vec![(-4.0, 4.0); 6];
    let cfg = DeConfig {
        population: 24,
        f: 0.7,
        cr: 0.9,
        max_generations: 60,
        strategy: Strategy::RandToBest1Bin,
        seed: 0xBEEF,
        ..Default::default()
    };
    let reference = with_threads(1, || minimize_par(sphere, &bounds, &cfg));
    for t in THREAD_COUNTS {
        let r = with_threads(t, || minimize_par(sphere, &bounds, &cfg));
        assert_eq!(r.cost.to_bits(), reference.cost.to_bits(), "cost@{t}");
        assert_f64_bits_eq(&reference.x, &r.x, &format!("minimize_par x@{t}"));
        assert_eq!(r.evaluations, reference.evaluations, "evaluations@{t}");
        assert_eq!(r.generations, reference.generations, "generations@{t}");
    }
}

fn capture_jobs() -> Vec<(Pose, Vec<Echo>)> {
    (0..5)
        .map(|i| {
            let echoes: Vec<Echo> = (0..7)
                .map(|k| {
                    Echo::new(
                        Vec3::new(-0.9 + 0.3 * k as f64, 2.5 + 0.05 * i as f64, 0.0),
                        Complex64::from_polar(ros_em::db::db_to_lin(-40.0), 0.31 * k as f64),
                    )
                })
                .collect();
            (
                Pose::side_looking(Vec3::new(0.04 * i as f64, 0.0, 0.0)),
                echoes,
            )
        })
        .collect()
}

#[test]
fn capture_batch_bit_identical_across_thread_counts() {
    let radar = FmcwRadar::ti_eval();
    let jobs = capture_jobs();
    let reference = with_threads(1, || {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        radar.capture_batch(&jobs, &mut rng)
    });
    for t in THREAD_COUNTS {
        let frames = with_threads(t, || {
            let mut rng = StdRng::seed_from_u64(0xA11CE);
            radar.capture_batch(&jobs, &mut rng)
        });
        assert_eq!(frames.len(), reference.len());
        for (f, r) in frames.iter().zip(&reference) {
            for (fa, ra) in f.data.iter().zip(&r.data) {
                assert_complex_bits_eq(ra, fa, &format!("capture_batch@{t}"));
            }
        }
    }
}

#[test]
fn detect_batch_bit_identical_across_thread_counts() {
    let radar = FmcwRadar::ti_eval();
    let jobs = capture_jobs();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let frames = {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        radar.capture_batch(&jobs, &mut rng)
    };
    let reference = with_threads(1, || radar.detect_batch(&frames));
    for t in THREAD_COUNTS {
        let points = with_threads(t, || radar.detect_batch(&frames));
        assert_eq!(points.len(), reference.len());
        for (ps, rs) in points.iter().zip(&reference) {
            assert_eq!(ps.len(), rs.len(), "detect_batch@{t}: point count");
            for (p, r) in ps.iter().zip(rs) {
                assert_eq!(p.range_m.to_bits(), r.range_m.to_bits(), "range@{t}");
                assert_eq!(
                    p.azimuth_rad.to_bits(),
                    r.azimuth_rad.to_bits(),
                    "azimuth@{t}"
                );
                assert_eq!(p.power_mw.to_bits(), r.power_mw.to_bits(), "power@{t}");
            }
        }
    }
}

fn drive_by_outcome(cfg: &ReaderConfig) -> Outcome {
    let code = SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    };
    let tag = code
        .encode_with(ros_tests::fixture_cache(), &[true, false, true, true])
        .expect("valid 4-bit word");
    DriveBy::new(tag, 2.0).with_seed(0xD811).run(cfg)
}

fn assert_outcomes_bit_identical(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.bits(), b.bits(), "{what}: decoded bits");
    assert_eq!(a.rss_trace.len(), b.rss_trace.len(), "{what}: trace length");
    for (sa, sb) in a.rss_trace.iter().zip(&b.rss_trace) {
        assert_eq!(sa.rss.re.to_bits(), sb.rss.re.to_bits(), "{what}: rss re");
        assert_eq!(sa.rss.im.to_bits(), sb.rss.im.to_bits(), "{what}: rss im");
        assert_eq!(
            sa.radar_pos.x.to_bits(),
            sb.radar_pos.x.to_bits(),
            "{what}: pos"
        );
    }
    match (&a.decode, &b.decode) {
        (Ok(da), Ok(db)) => {
            assert_eq!(
                da.snr_linear.to_bits(),
                db.snr_linear.to_bits(),
                "{what}: snr"
            );
            assert_f64_bits_eq(
                &da.slot_amplitudes,
                &db.slot_amplitudes,
                &format!("{what}: slot amplitudes"),
            );
        }
        (Err(_), Err(_)) => {}
        _ => panic!("{what}: one run decoded, the other did not"),
    }
}

/// The planned capture → detect path exactly as the full reader wires
/// it: one [`CaptureScratch`], then one [`DetectScratch`] per worker
/// partitioned by [`ros_exec::par_for_each_mut`].
fn planned_capture_detect(
    radar: &FmcwRadar,
    jobs: &[(Pose, Vec<Echo>)],
) -> (Vec<ros_radar::frontend::Frame>, Vec<Vec<RadarPoint>>) {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let mut capture = CaptureScratch::default();
    let mut frames = Vec::new();
    radar.capture_batch_with(jobs, &mut rng, &mut capture, &mut frames);
    let workers = ros_exec::threads().max(1).min(frames.len().max(1));
    let mut scratches = vec![DetectScratch::default(); workers];
    let mut detections: Vec<Vec<RadarPoint>> = vec![Vec::new(); frames.len()];
    ros_exec::par_for_each_mut(&mut scratches, &mut detections, |scratch, j, pts| {
        radar.detect_with(&frames[j], scratch, pts);
    });
    (frames, detections)
}

#[test]
fn planned_capture_detect_bit_identical_across_thread_counts() {
    let radar = FmcwRadar::ti_eval();
    let jobs = capture_jobs();
    let (ref_frames, ref_points) = with_threads(1, || planned_capture_detect(&radar, &jobs));
    for t in THREAD_COUNTS {
        let (frames, points) = with_threads(t, || planned_capture_detect(&radar, &jobs));
        assert_eq!(frames.len(), ref_frames.len());
        for (f, r) in frames.iter().zip(&ref_frames) {
            for (fa, ra) in f.data.iter().zip(&r.data) {
                assert_complex_bits_eq(ra, fa, &format!("planned capture@{t}"));
            }
        }
        assert_eq!(points.len(), ref_points.len());
        for (ps, rs) in points.iter().zip(&ref_points) {
            assert_eq!(ps.len(), rs.len(), "planned detect@{t}: point count");
            for (p, r) in ps.iter().zip(rs) {
                assert_eq!(p.range_m.to_bits(), r.range_m.to_bits(), "range@{t}");
                assert_eq!(
                    p.azimuth_rad.to_bits(),
                    r.azimuth_rad.to_bits(),
                    "azimuth@{t}"
                );
                assert_eq!(p.power_mw.to_bits(), r.power_mw.to_bits(), "power@{t}");
            }
        }
    }
}

/// A noise-free drive-by RSS trace straight from the tag physics (sum
/// of scatterer echoes per believed radar position).
fn planned_decode_trace(tag: &Tag) -> Vec<RssSample> {
    let ctx = EchoContext::ti_clear();
    (0..161)
        .map(|i| {
            let pos = Vec3::new(-2.0 + 4.0 * i as f64 / 160.0, 0.0, 0.0);
            let echoes = tag.echoes(pos, Polarization::H, Polarization::V, &ctx);
            let mut rss = Complex64::ZERO;
            for e in &echoes {
                rss += e.amp;
            }
            RssSample { radar_pos: pos, rss }
        })
        .collect()
}

#[test]
fn planned_decode_bit_identical_across_thread_counts() {
    let tag = SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    }
    .encode_with(ros_tests::fixture_cache(), &[true, false, true, true])
    .expect("valid 4-bit word")
    .mounted_at(Vec3::new(0.0, 2.0, 0.0));
    let trace = planned_decode_trace(&tag);

    for cfg in [
        DecoderConfig::default(),
        DecoderConfig {
            use_czt: true,
            ..DecoderConfig::default()
        },
    ] {
        let reference = with_threads(1, || decode(&trace, tag.mount(), 0.0, tag.code(), &cfg))
            .expect("fixture decodes");
        assert_eq!(reference.bits, vec![true, false, true, true]);
        // One scratch arena survives the whole sweep: plan reuse across
        // repeated decodes must not perturb a single bit either.
        let mut scratch = DecodeScratch::new();
        for t in THREAD_COUNTS {
            let mut out = DecodeResult::default();
            with_threads(t, || {
                decode_into(
                    &trace,
                    tag.mount(),
                    0.0,
                    tag.code(),
                    &cfg,
                    &mut scratch,
                    &mut out,
                )
            })
            .expect("planned fixture decodes");
            assert_eq!(out.bits, reference.bits, "bits@{t}");
            assert_eq!(out.erasures, reference.erasures, "erasures@{t}");
            assert_eq!(
                out.snr_linear.to_bits(),
                reference.snr_linear.to_bits(),
                "snr@{t}"
            );
            assert_eq!(out.n_samples_used, reference.n_samples_used);
            assert_eq!(out.n_samples_nonfinite, reference.n_samples_nonfinite);
            assert_f64_bits_eq(
                &reference.slot_amplitudes,
                &out.slot_amplitudes,
                &format!("planned slot amps@{t}"),
            );
            assert_f64_bits_eq(
                &reference.spectrum_spacings_m,
                &out.spectrum_spacings_m,
                &format!("planned spacings@{t}"),
            );
            assert_f64_bits_eq(
                &reference.spectrum_mags,
                &out.spectrum_mags,
                &format!("planned mags@{t}"),
            );
        }
    }
}

#[test]
fn drive_by_fast_bit_identical_across_thread_counts() {
    let cfg = ReaderConfig::fast();
    let reference = with_threads(1, || drive_by_outcome(&cfg));
    for t in THREAD_COUNTS {
        let o = with_threads(t, || drive_by_outcome(&cfg));
        assert_outcomes_bit_identical(&reference, &o, &format!("fast@{t}"));
    }
}

#[test]
fn drive_by_full_bit_identical_across_thread_counts() {
    let cfg = ReaderConfig::full();
    let reference = with_threads(1, || drive_by_outcome(&cfg));
    for t in THREAD_COUNTS {
        let o = with_threads(t, || drive_by_outcome(&cfg));
        assert_outcomes_bit_identical(&reference, &o, &format!("full@{t}"));
    }
}

/// The corridor reader service at 1, 2, and 8 pinned executor threads
/// (auto worker resolution) produces one bit-identical read log: the
/// service's output is a function of the scenario, never of how many
/// shards the encounters landed on.
#[test]
fn corridor_service_bit_identical_across_thread_counts() {
    use ros_serve::{run_corridor, CorridorConfig};
    let cfg = CorridorConfig {
        n_radars: 2,
        n_vehicles: 2,
        n_tags: 1,
        channel_capacity: 8,
        chunk_frames: 32,
        ..CorridorConfig::default()
    };
    let reference = with_threads(1, || run_corridor(&cfg, 0));
    assert_eq!(reference.workers, 1);
    for t in THREAD_COUNTS {
        let r = with_threads(t, || run_corridor(&cfg, 0));
        assert_eq!(r.workers, t, "auto resolution follows the pinned pool");
        assert_eq!(r.log(), reference.log(), "read log @ {t} threads");
        assert_eq!(r.frames_produced, reference.frames_produced, "@ {t} threads");
        assert_eq!(r.frames_produced, r.frames_consumed, "@ {t} threads");
    }
}
