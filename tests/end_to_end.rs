//! End-to-end integration tests: encode → physics → radar → decode.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::Vec3;
use ros_scene::objects::{ClutterObject, ObjectClass};

fn code(rows: usize) -> SpatialCode {
    SpatialCode {
        rows_per_stack: rows,
        ..SpatialCode::paper_4bit()
    }
}

#[test]
fn all_16_bit_patterns_roundtrip() {
    // Every 4-bit message must decode exactly in a clean fast-mode
    // pass (except all-zeros, which has no peaks to anchor on — the
    // tag always keeps its reference stack, but an all-empty coding
    // band is indistinguishable from no tag).
    for word in 1u8..16 {
        let bits = [
            word & 1 != 0,
            word & 2 != 0,
            word & 4 != 0,
            word & 8 != 0,
        ];
        let tag = code(8).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
        let outcome = DriveBy::new(tag, 2.5)
            .with_seed(word as u64)
            .run(&ReaderConfig::fast());
        assert_eq!(
            outcome.bits(),
            bits.to_vec(),
            "pattern {word:04b} mis-decoded: {:?}",
            outcome.decode.as_ref().map(|d| &d.slot_amplitudes)
        );
    }
}

#[test]
fn snr_exceeds_paper_floor_in_typical_conditions() {
    // §7: "the decoding SNR of RoS consistently exceeds 14 dB in
    // typical scenarios".
    for (rows, standoff) in [(8, 2.0), (8, 3.0), (16, 3.0), (32, 3.0), (32, 4.0)] {
        let tag = code(rows).encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
        let mut drive = DriveBy::new(tag, standoff).with_seed(7);
        drive.half_span_m = 8.0;
        let outcome = drive.run(&ReaderConfig::fast());
        let snr = outcome.snr_db().expect("decode");
        assert!(
            snr > 14.0,
            "rows={rows} standoff={standoff}: SNR {snr:.1} dB"
        );
    }
}

#[test]
fn decode_fails_gracefully_beyond_range() {
    // An 8-row tag at 6 m is under the noise floor (Fig. 15) — the
    // reader must not hallucinate the all-ones pattern.
    let tag = code(8).encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
    let mut drive = DriveBy::new(tag, 6.0).with_seed(11);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_ne!(outcome.bits(), vec![true; 4], "ghost decode at 6 m");
}

#[test]
fn full_pipeline_detects_and_decodes_among_clutter() {
    let bits = [true, false, true, true];
    let tag = code(32)
        .encode_with(ros_tests::fixture_cache(), &bits)
        .unwrap()
        .with_column_bow(0.0004, 5);
    let mut drive = DriveBy::new(tag, 3.0)
        .with_clutter(ClutterObject::new(
            ObjectClass::StreetLamp,
            Vec3::new(1.8, 3.3, 1.0),
            21,
        ))
        .with_seed(90125);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);

    // The detector must find the tag near its true position…
    let center = outcome.detected_center.expect("tag detected");
    assert!(
        (center.x - 0.0).abs() < 0.3 && (center.y - 3.0).abs() < 0.3,
        "detected at ({:.2}, {:.2})",
        center.x,
        center.y
    );
    // …and the lamp cluster must not be classified as a tag.
    let lamp_cluster = outcome
        .clusters
        .iter()
        .find(|c| (c.features.center.x - 1.8).abs() < 0.6)
        .expect("lamp cluster");
    assert!(!lamp_cluster.is_tag);
    assert_eq!(outcome.bits(), bits.to_vec());
}

#[test]
fn six_bit_code_needs_far_field_and_a_better_radar() {
    // §5.3's capacity limit, reproduced: a 6-bit tag's coding aperture
    // has a ≈7.6 m far field. Reading it from 4 m (near field) smears
    // the negative-side coding peaks; reading it from beyond the far
    // field needs more link budget than the TI eval radar has — a
    // commercial radar (§8) decodes it cleanly.
    let code6 = SpatialCode::with_bits(6, 8);
    let bits = [true, true, false, true, false, true];

    // Near field with the TI radar: at least one bit corrupted.
    let tag = code6.encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut near = DriveBy::new(tag, 4.0).with_seed(66);
    near.half_span_m = 10.0;
    let near_out = near.run(&ReaderConfig::fast());
    assert_ne!(near_out.bits(), bits.to_vec(), "near-field read should fail");

    // Far field with the commercial radar: clean decode.
    let tag = code6.encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut far = DriveBy::new(tag, 8.5).with_seed(66);
    far.half_span_m = 14.0;
    far.radar.budget = ros_em::radar_eq::RadarLinkBudget::commercial();
    let far_out = far.run(&ReaderConfig::fast());
    assert_eq!(far_out.bits(), bits.to_vec());
}

#[test]
fn full_pipeline_reads_advertising_board() {
    // Two tags side by side (§5.3's multi-tag boards): the full
    // pipeline must classify BOTH clusters as tags and decode each.
    let bits_a = [true, false, true, true];
    let bits_b = [true, true, false, true];
    let tag_a = code(32).encode_with(ros_tests::fixture_cache(), &bits_a).unwrap().with_column_bow(0.0004, 1);
    let tag_b = code(32)
        .encode_with(ros_tests::fixture_cache(), &bits_b)
        .unwrap()
        .with_column_bow(0.0004, 2)
        .mounted_at(Vec3::new(1.8, 3.0, 1.0));
    let mut drive = DriveBy::new(tag_a, 3.0)
        .with_extra_tag(tag_b)
        .with_seed(808);
    drive.half_span_m = 3.5;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    let tags: Vec<_> = outcome.all_tags.iter().collect();
    assert!(tags.len() >= 2, "found {} tag clusters", tags.len());
    let near_a = tags
        .iter()
        .find(|t| (t.center.x - 0.0).abs() < 0.5)
        .expect("tag A cluster");
    // Note: spotlighting tag A's centre decodes tag A's bits even with
    // tag B 1.8 m away (the board story of Fig. 16a).
    assert_eq!(near_a.decode.bits, bits_a.to_vec());
}

#[test]
fn crowded_scene_preset_still_decodes() {
    use ros_scene::scenario::ScenePreset;
    let bits = [true, false, false, true];
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap().with_column_bow(0.0004, 9);
    let mut drive = DriveBy::new(tag, 3.0)
        .with_scene(ScenePreset::UrbanCurb, 77)
        .with_seed(909);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    assert_eq!(outcome.bits(), bits.to_vec());
    // No clutter cluster may be classified as a tag.
    for c in &outcome.clusters {
        if c.is_tag {
            assert!(
                (c.features.center.x).abs() < 0.5,
                "clutter misclassified as tag at {:?}",
                c.features.center
            );
        }
    }
}

#[test]
fn lane_change_pass_still_decodes() {
    // A lane change toward the curb mid-pass changes the standoff
    // continuously; the envelope compensation and u-mapping must
    // absorb it.
    use ros_scene::trajectory::LateralProfile;
    let bits = [true, true, false, true];
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 3.5)
        .with_lateral(LateralProfile::LaneChange { offset_m: 1.0 })
        .with_seed(707);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), bits.to_vec());
    assert!(outcome.snr_db().unwrap() > 10.0);
}

#[test]
fn curved_road_pass_still_decodes() {
    use ros_scene::trajectory::LateralProfile;
    let bits = [true, false, true, true];
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 3.5)
        .with_lateral(LateralProfile::Curve { sagitta_m: 0.7 })
        .with_seed(708);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), bits.to_vec());
}

#[test]
fn decodes_over_reflective_asphalt() {
    // Two-ray ground bounce ripples the RSS trace with height-dependent
    // fading; the decoder must still read the tag. At 79 GHz asphalt is
    // rough on the wavelength scale (Rayleigh criterion), so the
    // specular coefficient is small (|Γ| ≈ 0.2).
    let bits = [true, false, true, true];
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 3.0).with_ground(-0.2).with_seed(313);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), bits.to_vec());
}

#[test]
fn partial_blockage_tolerated_full_blockage_fails() {
    use ros_core::reader::Blockage;
    let bits = [true, false, true, true];
    // A truck shadows ~20% of the usable (±30° FoV) window.
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 3.0)
        .with_blockage(Blockage {
            t_start_s: 3.13,
            t_end_s: 3.48,
            attenuation_db: 40.0,
        })
        .with_seed(515);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), bits.to_vec(), "partial blockage should survive");

    // Full-pass metal blockage: §7.3 says decoding fails — and it must
    // not hallucinate the message.
    let tag = code(32).encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 3.0)
        .with_blockage(Blockage {
            t_start_s: 0.0,
            t_end_s: 1e9,
            attenuation_db: 60.0,
        })
        .with_seed(516);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_ne!(outcome.bits(), bits.to_vec(), "ghost decode through a truck");
}

#[test]
fn deterministic_given_seed() {
    let tag = code(8).encode_with(ros_tests::fixture_cache(), &[true, false, false, true]).unwrap();
    let a = DriveBy::new(tag.clone(), 3.0)
        .with_seed(123)
        .run(&ReaderConfig::fast());
    let b = DriveBy::new(tag, 3.0)
        .with_seed(123)
        .run(&ReaderConfig::fast());
    assert_eq!(a.bits(), b.bits());
    assert_eq!(a.snr_db(), b.snr_db());
}
