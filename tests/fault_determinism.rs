//! Fault-injection determinism conformance suite.
//!
//! The `ros-fault` contract: a `FaultPlan` is realized by serial
//! pre-draw, so any plan — every cell of the canonical matrix — must
//! produce bit-identical outcomes at 1, 2, and 8 executor threads, in
//! both reader modes, including the fault counters the pass emits.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, ReaderConfig};
use ros_core::tag::Tag;
use ros_exec::ThreadGuard;
use ros_fault::FaultPlan;
use ros_obs::Level;
use std::sync::Mutex;

/// Serializes tests touching the process-global obs state.
static LOCK: Mutex<()> = Mutex::new(());

/// Master seed of the canonical matrix (shared with `bench faults`).
const MATRIX_SEED: u64 = 0xfa17;

fn tag8(bits: &[bool]) -> Tag {
    SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    }
    .encode_with(ros_tests::fixture_cache(), bits)
    .unwrap()
}

/// The frozen full-pipeline fixture (mirrors `tests/obs_trace.rs`).
fn full_fixture() -> (DriveBy, ReaderConfig) {
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let tag = code.encode_with(ros_tests::fixture_cache(), &[true, false, true, true]).unwrap();
    let mut drive = DriveBy::new(tag, 3.0).with_seed(90125);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    (drive, cfg)
}

/// Bit-exact fingerprint of everything a pass reports.
fn fingerprint(o: &Outcome) -> (Vec<bool>, Vec<(u64, u64)>, String, usize) {
    (
        o.bits().to_vec(),
        o.rss_trace
            .iter()
            .map(|s| (s.rss.re.to_bits(), s.rss.im.to_bits()))
            .collect(),
        format!("{:?}", o.verdict),
        o.frame_verdicts
            .iter()
            .filter(|v| v.is_degraded())
            .count(),
    )
}

fn run_pinned(drive: &DriveBy, cfg: &ReaderConfig, threads: usize) -> Outcome {
    let _pin = ThreadGuard::pin(Some(threads));
    drive.run(cfg)
}

#[test]
fn canonical_matrix_is_thread_invariant_in_fast_mode() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let cfg = ReaderConfig::fast();
    for (pi, plan) in FaultPlan::canonical_matrix(MATRIX_SEED)
        .into_iter()
        .enumerate()
    {
        let drive = DriveBy::new(tag8(&[true, false, true, true]), 2.0)
            .with_seed(7)
            .with_faults(plan);
        let one = fingerprint(&run_pinned(&drive, &cfg, 1));
        for t in [2, 8] {
            let many = fingerprint(&run_pinned(&drive, &cfg, t));
            assert_eq!(one, many, "plan #{pi} diverged at {t} threads (fast)");
        }
    }
}

#[test]
fn storm_and_windowed_plans_are_thread_invariant_in_full_mode() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let matrix = FaultPlan::canonical_matrix(MATRIX_SEED);
    // The two most entangled plans: the mid-pass burst window and the
    // multi-stream storm (the tail of the canonical matrix).
    let picked: Vec<FaultPlan> = matrix.into_iter().rev().take(2).collect();
    let (base, cfg) = full_fixture();
    for plan in picked {
        let label = format!("{:?}", plan.specs.iter().map(|s| s.kind.name()).collect::<Vec<_>>());
        let drive = base.clone().with_faults(plan);
        let one = fingerprint(&run_pinned(&drive, &cfg, 1));
        for t in [2, 8] {
            let many = fingerprint(&run_pinned(&drive, &cfg, t));
            assert_eq!(one, many, "plan {label} diverged at {t} threads (full)");
        }
    }
}

/// Runs the full fixture under the storm plan with telemetry routed to
/// memory and returns the exported `fault.*` / `reader.frames_degraded`
/// metric lines verbatim.
fn fault_metric_lines(threads: usize) -> Vec<String> {
    let _pin = ThreadGuard::pin(Some(threads));
    let buffer = ros_obs::install_memory_sink();
    ros_obs::reset_metrics();
    ros_obs::set_level(Level::Summary);

    let (base, cfg) = full_fixture();
    let storm = FaultPlan::canonical_matrix(MATRIX_SEED)
        .pop()
        .expect("matrix is non-empty");
    let _ = base.with_faults(storm).run(&cfg);

    ros_obs::flush();
    ros_obs::set_level(Level::Off);
    ros_obs::reset_metrics();
    let lines = buffer.lock().expect("sink buffer").clone();
    lines
        .into_iter()
        .filter(|l| l.contains("\"name\":\"fault.") || l.contains("\"name\":\"reader.frames_degraded\""))
        .collect()
}

#[test]
fn fault_counters_are_identical_across_thread_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let one = fault_metric_lines(1);
    assert!(
        !one.is_empty(),
        "storm plan must export fault counters"
    );
    for t in [2, 8] {
        assert_eq!(
            one,
            fault_metric_lines(t),
            "fault counters diverged at {t} threads"
        );
    }
}

#[test]
fn zero_rate_plan_matches_no_plan_bit_for_bit() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // Attaching a plan that never fires must not perturb the RNG
    // stream: the fault layer draws from its own seed space.
    let cfg = ReaderConfig::fast();
    let clean = DriveBy::new(tag8(&[true, true, false, true]), 2.0).with_seed(41);
    let gated = clean.clone().with_faults(FaultPlan::single(
        9,
        ros_fault::FaultKind::FrameDrop,
        0.0,
    ));
    let a = run_pinned(&clean, &cfg, 2);
    let b = run_pinned(&gated, &cfg, 2);
    assert_eq!(a.bits(), b.bits());
    assert_eq!(
        fingerprint(&a).1,
        fingerprint(&b).1,
        "zero-rate plan perturbed the RSS trace"
    );
}
