//! Golden telemetry trace of a *degraded* full-pipeline drive-by.
//!
//! The companion of `tests/obs_trace.rs`: the same frozen 3-stack
//! fixture, but run under the canonical composite fault plan (the
//! "storm" tail of [`FaultPlan::canonical_matrix`]). With the null
//! clock and serial fault pre-draw, the summary ndjson stream — spans,
//! the degraded-frame bookkeeping, and the `fault.*` counters — is a
//! pure function of the seeds, so its skeleton is pinned as a golden
//! and must be bit-identical at any thread count.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_exec::ThreadGuard;
use ros_fault::FaultPlan;
use ros_obs::Level;
use std::sync::Mutex;

/// Serializes the tests in this binary: they share the process-global
/// level, sink, and metric registry.
static LOCK: Mutex<()> = Mutex::new(());

/// Fixture seed — the end-to-end detecting fixture's, reused.
const SEED: u64 = 90125;

/// Master seed of the canonical fault matrix (shared with
/// `bench faults` and `tests/fault_determinism.rs`).
const MATRIX_SEED: u64 = 0xfa17;

/// The frozen `ev[:stage|:name]` skeleton of the degraded summary
/// trace: the clean pipeline skeleton plus the fault counters the
/// storm plan fires (drops, saturation, point corruption, tracking
/// spikes) and the degraded-frame tally.
///
/// Regenerate by running this fixture with a memory sink and printing
/// `skeleton(&lines)` — see `run_traced()` below.
const EXPECTED: &[&str] = &[
    "span:reader.gather_echoes",
    "span:radar.capture_batch",
    "span:reader.detect",
    "dbscan",
    "span:dsp.dbscan",
    "span:detector.score",
    "detector.pick",
    "span:reader.spotlight",
    "decode.result",
    "span:decode",
    "decode.result",
    "span:decode",
    "reader.pass",
    "span:reader.run_full",
    "metric:radar.frames_synthesized",
    "metric:radar.cfar_detections",
    "metric:radar.points_per_frame",
    "metric:dsp.dbscan.runs",
    "metric:dsp.dbscan.clusters",
    "metric:dsp.dbscan.noise_points",
    "metric:detector.clusters_scored",
    "metric:detector.tags_classified",
    "metric:decode.attempts",
    "metric:decode.ok",
    "metric:decode.snr_db",
    "metric:decode.slot_amp",
    "metric:fault.frames_dropped",
    "metric:fault.frames_saturated",
    "metric:fault.points_corrupted",
    "metric:fault.tracking_spikes",
    "metric:reader.frames",
    "metric:reader.cloud_points",
    "metric:reader.frames_degraded",
    "metric:time.reader.run_full",
    "metric:time.reader.gather_echoes",
    "metric:time.radar.capture_batch",
    "metric:time.reader.detect",
    "metric:time.dsp.dbscan",
    "metric:time.detector.score",
    "metric:time.reader.spotlight",
    "metric:time.decode",
];

/// Runs the frozen fixture under the storm plan with telemetry routed
/// to memory, returning every emitted line.
fn run_traced(threads: usize) -> Vec<String> {
    let _pin = ThreadGuard::pin(Some(threads));

    // Fixture built before the sink installs: encoding runs the
    // one-shot DE beam-shaping optimization (cached per process,
    // `optim.de.generations`), and the golden pins the pipeline
    // trace, not cache-temperature-dependent setup.
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let tag = code.encode_with(ros_tests::fixture_cache(), &[true, false, true, true]).expect("word encodes");

    let buffer = ros_obs::install_memory_sink();
    ros_obs::reset_metrics();
    ros_obs::set_level(Level::Summary);
    let mut drive = DriveBy::new(tag, 3.0).with_seed(SEED);
    drive.half_span_m = 3.0;
    let storm = FaultPlan::canonical_matrix(MATRIX_SEED)
        .pop()
        .expect("matrix is non-empty");
    let drive = drive.with_faults(storm);
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    assert!(
        outcome.frame_verdicts.iter().any(|v| v.is_degraded()),
        "the storm plan must visibly degrade frames"
    );

    ros_obs::flush();
    ros_obs::set_level(Level::Off);
    ros_obs::reset_metrics();
    let lines = buffer.lock().expect("sink buffer").clone();
    drop(buffer);
    lines
}

/// Reduces ndjson lines to their `ev[:stage|:name]` skeleton.
fn skeleton(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| {
            let ev = field(l, "ev").expect("every line has an ev");
            match ev.as_str() {
                "span" => format!("span:{}", field(l, "stage").expect("span stage")),
                "metric" => format!("metric:{}", field(l, "name").expect("metric name")),
                _ => ev,
            }
        })
        .collect()
}

/// Extracts a string field from one flat ndjson object.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

#[test]
fn degraded_trace_skeleton_matches_golden() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let lines = run_traced(1);

    for l in &lines {
        assert!(
            l.starts_with('{') && l.ends_with('}') && l.contains("\"ev\":\""),
            "malformed ndjson line: {l}"
        );
    }

    // The pass summary must carry the typed verdict.
    let pass = lines
        .iter()
        .find(|l| l.contains("\"ev\":\"reader.pass\""))
        .expect("pass summary event");
    assert!(
        field(pass, "verdict").is_some(),
        "reader.pass must report the typed verdict: {pass}"
    );

    let got = skeleton(&lines);
    assert_eq!(
        got,
        EXPECTED,
        "degraded telemetry skeleton drifted;\n got: {got:#?}"
    );
}

#[test]
fn degraded_trace_is_identical_across_thread_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let one = run_traced(1);
    for t in [2, 8] {
        let many = run_traced(t);
        assert_eq!(
            one, many,
            "degraded summary trace must be bit-identical at {t} threads"
        );
    }
}
