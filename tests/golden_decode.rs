//! Frozen end-to-end decode fixture (golden test).
//!
//! A 3-stack tag (reference stack + 2 data bits, 8 rows per stack) is
//! driven past at 2 m standoff in fast mode with a fixed seed. The
//! decoded bits, the per-bit normalized peak amplitudes, and the SNR
//! are pinned to checked-in golden values, so *any* numerical drift in
//! the RCS model, the sampling geometry, the resampler, the CZT
//! decoder, or the executor wiring shows up as a loud diff instead of
//! a silent quality regression.
//!
//! If a deliberate algorithm change moves these numbers, regenerate
//! them by printing `outcome.decode` from this exact fixture and
//! update the constants together with a CHANGES.md note.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, Outcome, ReaderConfig};

/// Fixture seed — arbitrary but frozen.
const SEED: u64 = 0x90_1DE2;

/// Golden decoded payload.
const GOLDEN_BITS: [bool; 2] = [true, true];

/// Golden per-bit peak amplitudes as reported by the decoder
/// (spectrum magnitude at each coding slot), reference-normalized
/// below before comparison.
const GOLDEN_AMPS: [f64; 2] = [14.399565319663589, 13.888325897830049];

/// Golden decode SNR (linear power ratio).
const GOLDEN_SNR_LINEAR: f64 = 200.051197383188423;

/// Golden number of resampled u-grid points the decoder consumed.
const GOLDEN_SAMPLES_USED: usize = 289;

/// Golden RSS trace length (one sample per fast-mode frame).
const GOLDEN_TRACE_LEN: usize = 1001;

/// Golden median RSS over the trace \[dBm\].
const GOLDEN_MEDIAN_RSS_DBM: f64 = -53.1895278382179697;

/// Amplitude/SNR tolerance: the fixture is bit-deterministic, so the
/// tolerance only absorbs printing round-trip error in the goldens.
const TOL: f64 = 1e-9;

fn run_fixture() -> Outcome {
    let code = SpatialCode::with_bits(2, 8);
    let tag = code.encode(&GOLDEN_BITS).expect("2-bit word encodes");
    DriveBy::new(tag, 2.0)
        .with_seed(SEED)
        .run(&ReaderConfig::fast())
}

#[test]
fn golden_bits_and_amplitudes() {
    let outcome = run_fixture();
    assert_eq!(outcome.bits(), GOLDEN_BITS, "decoded payload drifted");

    let decode = outcome.decode.as_ref().expect("fixture decodes");
    assert_eq!(decode.bits, GOLDEN_BITS);
    assert_eq!(decode.slot_amplitudes.len(), GOLDEN_AMPS.len());

    // Per-bit peak amplitudes, normalized to the strongest slot (the
    // classifier's own reference frame).
    let peak = GOLDEN_AMPS.iter().cloned().fold(f64::MIN, f64::max);
    let got_peak = decode
        .slot_amplitudes
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    for (i, (got, want)) in decode.slot_amplitudes.iter().zip(&GOLDEN_AMPS).enumerate() {
        let got_norm = got / got_peak;
        let want_norm = want / peak;
        assert!(
            (got_norm - want_norm).abs() < TOL,
            "slot {i}: normalized amplitude {got_norm} != golden {want_norm}"
        );
        // Raw amplitudes are also frozen (looser only by print round-trip).
        assert!(
            (got - want).abs() < TOL * want.abs(),
            "slot {i}: raw amplitude {got} != golden {want}"
        );
    }
}

/// The steady-state path — plan caches, scratch arenas, per-worker
/// partitioning — must land on the frozen goldens at *any* worker
/// count, not just reproduce itself. 1/2/8 workers each replay the
/// fixture against the same constants.
#[test]
fn golden_holds_at_every_worker_count() {
    for workers in [1usize, 2, 8] {
        let _pin = ros_exec::ThreadGuard::pin(Some(workers));
        let outcome = run_fixture();
        assert_eq!(
            outcome.bits(), GOLDEN_BITS,
            "decoded payload drifted at {workers} worker(s)"
        );
        let decode = outcome.decode.as_ref().expect("fixture decodes");
        for (i, (got, want)) in decode.slot_amplitudes.iter().zip(&GOLDEN_AMPS).enumerate() {
            assert!(
                (got - want).abs() < TOL * want.abs(),
                "slot {i}@{workers} workers: amplitude {got} != golden {want}"
            );
        }
        assert!(
            (decode.snr_linear - GOLDEN_SNR_LINEAR).abs() < TOL * GOLDEN_SNR_LINEAR,
            "SNR drifted at {workers} worker(s): {} vs golden {}",
            decode.snr_linear,
            GOLDEN_SNR_LINEAR
        );
        assert_eq!(decode.n_samples_used, GOLDEN_SAMPLES_USED);
        assert_eq!(outcome.rss_trace.len(), GOLDEN_TRACE_LEN);
    }
}

#[test]
fn golden_snr_and_sampling() {
    let outcome = run_fixture();
    let decode = outcome.decode.as_ref().expect("fixture decodes");

    assert!(
        (decode.snr_linear - GOLDEN_SNR_LINEAR).abs() < TOL * GOLDEN_SNR_LINEAR,
        "SNR drifted: {} vs golden {}",
        decode.snr_linear,
        GOLDEN_SNR_LINEAR
    );
    assert_eq!(decode.n_samples_used, GOLDEN_SAMPLES_USED);
    assert_eq!(outcome.rss_trace.len(), GOLDEN_TRACE_LEN);
    assert!(
        (outcome.median_rss_dbm() - GOLDEN_MEDIAN_RSS_DBM).abs() < TOL,
        "median RSS drifted: {} vs golden {}",
        outcome.median_rss_dbm(),
        GOLDEN_MEDIAN_RSS_DBM
    );
}
