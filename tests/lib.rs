//! Shared helpers for RoS integration tests.
