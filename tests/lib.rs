//! Shared helpers for RoS integration tests.

use ros_cache::GeomCache;
use std::sync::OnceLock;

/// Process-wide fixture cache for expensive tag geometry.
///
/// The library crates carry no global caches (DESIGN.md §16): every
/// memoized table lives in an explicitly injected [`GeomCache`]. Test
/// binaries, however, build the same 32-row DE-optimized shaping
/// profile dozens of times across unrelated `#[test]` functions, so
/// they share one fixture cache the way a production composition root
/// would. Cached reads are bit-identical to uncached ones (proved by
/// `cache_determinism.rs`), so sharing cannot couple tests.
pub fn fixture_cache() -> &'static GeomCache {
    static CACHE: OnceLock<GeomCache> = OnceLock::new();
    CACHE.get_or_init(GeomCache::new)
}
