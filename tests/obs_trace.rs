//! Golden telemetry trace of a full-pipeline drive-by.
//!
//! With the null clock (no `init_from_env`) and one pinned worker, the
//! summary-level ndjson stream of a frozen 3-stack fixture is fully
//! deterministic: spans carry `dur_ns: 0`, metrics export in the fixed
//! registration order, and event payloads are pure functions of the
//! seeded scenario. The event/stage skeleton is pinned here, so a
//! renamed stage, a dropped span, or a reordered export shows up as a
//! loud diff — the telemetry schema is part of the repo's contract,
//! same as the golden decode numbers.
//!
//! The trace must also be identical with the pool fanned out: summary
//! events are only emitted from serial code (workers touch counters,
//! which aggregate), so thread count must not change a single line.

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_exec::ThreadGuard;
use ros_obs::Level;
use std::sync::Mutex;

/// Serializes the tests in this binary: they share the process-global
/// level, sink, and metric registry.
static LOCK: Mutex<()> = Mutex::new(());

/// Fixture seed — the end-to-end detecting fixture's, reused.
const SEED: u64 = 90125;

/// The frozen `ev[:stage]` skeleton of the summary trace, in emission
/// order: pipeline spans/events first (spans appear where they *drop*),
/// then the flushed metric lines in `ros_obs::names` order.
///
/// Regenerate by running this fixture with a memory sink and printing
/// `skeleton(&lines)` — see `trace_skeleton()` below.
const EXPECTED: &[&str] = &[
    "span:reader.gather_echoes",
    "span:radar.capture_batch",
    "span:reader.detect",
    "dbscan",
    "span:dsp.dbscan",
    "span:detector.score",
    "detector.pick",
    "span:reader.spotlight",
    "decode.result",
    "span:decode",
    "decode.result",
    "span:decode",
    "reader.pass",
    "span:reader.run_full",
    "metric:radar.frames_synthesized",
    "metric:radar.cfar_detections",
    "metric:radar.points_per_frame",
    "metric:dsp.dbscan.runs",
    "metric:dsp.dbscan.clusters",
    "metric:dsp.dbscan.noise_points",
    "metric:detector.clusters_scored",
    "metric:detector.tags_classified",
    "metric:decode.attempts",
    "metric:decode.ok",
    "metric:decode.snr_db",
    "metric:decode.slot_amp",
    "metric:reader.frames",
    "metric:reader.cloud_points",
    "metric:time.reader.run_full",
    "metric:time.reader.gather_echoes",
    "metric:time.radar.capture_batch",
    "metric:time.reader.detect",
    "metric:time.dsp.dbscan",
    "metric:time.detector.score",
    "metric:time.reader.spotlight",
    "metric:time.decode",
];

/// Runs the frozen 3-stack full-pipeline fixture with telemetry routed
/// to memory, returning every emitted line.
fn run_traced(threads: usize) -> Vec<String> {
    let _pin = ThreadGuard::pin(Some(threads));

    // A 32-row 4-bit tag, big enough for the discriminator to
    // classify — the trace must cover a genuine detection, not the
    // true-mount fallback. Built *before* the sink installs: tag
    // construction runs the one-shot DE beam-shaping optimization
    // (cached per process, `optim.de.generations`), and the golden
    // pins the pipeline trace, not cache-temperature-dependent setup.
    let code = SpatialCode {
        rows_per_stack: 32,
        ..SpatialCode::paper_4bit()
    };
    let bits = [true, false, true, true];
    let tag = code.encode_with(ros_tests::fixture_cache(), &bits).expect("4-bit word encodes");

    let buffer = ros_obs::install_memory_sink();
    ros_obs::reset_metrics();
    ros_obs::set_level(Level::Summary);
    let mut drive = DriveBy::new(tag, 3.0).with_seed(SEED);
    drive.half_span_m = 3.0;
    let mut cfg = ReaderConfig::full();
    cfg.frame_stride = 8;
    let outcome = drive.run(&cfg);
    assert!(outcome.detected_center.is_some(), "fixture must detect");
    assert_eq!(outcome.bits(), bits, "fixture must decode");

    ros_obs::flush();
    ros_obs::set_level(Level::Off);
    ros_obs::reset_metrics();
    let lines = buffer.lock().expect("sink buffer").clone();
    drop(buffer);
    lines
}

/// Reduces ndjson lines to their `ev[:stage|:name]` skeleton.
fn skeleton(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| {
            let ev = field(l, "ev").expect("every line has an ev");
            match ev.as_str() {
                "span" => format!("span:{}", field(l, "stage").expect("span stage")),
                "metric" => format!("metric:{}", field(l, "name").expect("metric name")),
                _ => ev,
            }
        })
        .collect()
}

/// Extracts a string field from one flat ndjson object.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

#[test]
fn trace_skeleton_matches_golden() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let lines = run_traced(1);

    // Every line is a flat, braced, parseable-looking object.
    for l in &lines {
        assert!(
            l.starts_with('{') && l.ends_with('}') && l.contains("\"ev\":\""),
            "malformed ndjson line: {l}"
        );
    }

    // The null clock keeps spans bit-stable.
    for l in lines.iter().filter(|l| l.contains("\"ev\":\"span\"")) {
        assert!(
            l.contains("\"dur_ns\":0"),
            "span carried wall time without an installed clock: {l}"
        );
    }

    let got = skeleton(&lines);
    assert_eq!(
        got,
        EXPECTED,
        "telemetry skeleton drifted;\n got: {got:#?}"
    );
}

#[test]
fn trace_is_identical_across_thread_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let one = run_traced(1);
    for t in [2, 8] {
        let many = run_traced(t);
        assert_eq!(
            one, many,
            "summary trace must be bit-identical at {t} threads"
        );
    }
}
