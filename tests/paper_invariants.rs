//! Headline paper claims, asserted end-to-end across crates.

use ros_antenna::design;
use ros_antenna::shaping;
use ros_antenna::stack::PsvaaStack;
use ros_antenna::vaa::{ArrayKind, VanAttaArray};
use ros_core::capacity;
use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, ReaderConfig};
use ros_em::constants::{F_CENTER_HZ, LAMBDA_CENTER_M};
use ros_em::geom::deg_to_rad;
use ros_em::jones::Polarization;
use ros_em::radar_eq::RadarLinkBudget;
use ros_scene::weather::FogLevel;

#[test]
fn headline_design_rules() {
    // §4.1: optimal pairs = 3 for the 4 GHz automotive sweep.
    assert_eq!(design::optimal_antenna_pairs(4.0e9, F_CENTER_HZ), 3);
    // §5.3 link budget corner cases.
    assert!((capacity::max_decode_range_m(&RadarLinkBudget::ti_eval(), -23.0) - 6.9).abs() < 0.5);
    assert!(
        (capacity::max_decode_range_m(&RadarLinkBudget::commercial(), -23.0) - 52.0).abs() < 4.0
    );
    // §5.2 example layout.
    let code = SpatialCode::paper_4bit();
    let slots: Vec<f64> = code.slot_spacings_lambda();
    assert_eq!(slots, vec![6.0, 7.5, 9.0, 10.5]);
}

#[test]
fn psvaa_stack_of_paper_tag_is_about_10cm() {
    // Fig. 12a: "the height of a 32-array PSVAA stack is about 10.8 cm"
    // (beam-shaped — the phase weights add height over the 8.8 cm
    // uniform baseline).
    let shaped = shaping::shaped_stack_in(ros_tests::fixture_cache(), 32);
    let h = shaped.height_m();
    assert!(h > 0.088 && h < 0.125, "shaped 32-stack height {h} m");
    let uniform = PsvaaStack::uniform(32);
    assert!(shaped.height_m() > uniform.height_m());
}

#[test]
fn retroreflection_beats_specular_at_wide_angles() {
    // Fig. 4: the whole premise of using VAAs.
    let vaa = VanAttaArray::new(ArrayKind::VanAtta, 3);
    let ula = VanAttaArray::new(ArrayKind::Ula, 3);
    for deg in [25.0, 45.0, 60.0] {
        let th = deg_to_rad(deg);
        let v = vaa.monostatic_rcs_dbsm(th, F_CENTER_HZ, Polarization::V, Polarization::V);
        let u = ula.monostatic_rcs_dbsm(th, F_CENTER_HZ, Polarization::V, Polarization::V);
        assert!(v > u + 8.0, "at {deg}°: VAA {v:.1} vs ULA {u:.1}");
    }
}

#[test]
fn detection_ranges_scale_with_stack_size() {
    // Fig. 15: 8-row tags die by ~5 m; 32-row tags still decode at 6 m.
    let mk = |rows: usize| {
        SpatialCode {
            rows_per_stack: rows,
            ..SpatialCode::paper_4bit()
        }
        .encode_with(ros_tests::fixture_cache(), &[true; 4])
        .unwrap()
    };
    let mut drive8 = DriveBy::new(mk(8), 6.0).with_seed(2);
    drive8.half_span_m = 8.0;
    let out8 = drive8.run(&ReaderConfig::fast());
    assert_ne!(out8.bits(), vec![true; 4], "8-row tag should fail at 6 m");

    let mut drive32 = DriveBy::new(mk(32), 6.0).with_seed(2);
    drive32.half_span_m = 8.0;
    let out32 = drive32.run(&ReaderConfig::fast());
    assert_eq!(out32.bits(), vec![true; 4], "32-row tag must decode at 6 m");
}

#[test]
fn beam_shaping_stabilizes_elevation_mismatch() {
    // Fig. 14: at a 4° elevation offset the shaped tag still decodes
    // strongly; the un-shaped tag's RSS collapses.
    let mk = |shaped: bool| {
        SpatialCode {
            rows_per_stack: 32,
            beam_shaped: shaped,
            ..SpatialCode::paper_4bit()
        }
        .encode_with(ros_tests::fixture_cache(), &[true; 4])
        .unwrap()
    };
    let dz = 3.0 * deg_to_rad(4.0).tan();
    let run = |shaped: bool, seed: u64| {
        DriveBy::new(mk(shaped), 3.0)
            .with_radar_height(1.0 + dz)
            .with_seed(seed)
            .run(&ReaderConfig::fast())
    };
    // Median RSS over a few seeds: shaped must be ≥6 dB stronger.
    let med = |shaped: bool| {
        let v: Vec<f64> = (0..3).map(|s| run(shaped, 30 + s).median_rss_dbm()).collect();
        ros_dsp::stats::median(&v)
    };
    let with = med(true);
    let without = med(false);
    assert!(
        with > without + 6.0,
        "shaped {with:.1} dBm vs unshaped {without:.1} dBm at 4° offset"
    );
}

#[test]
fn fog_does_not_break_decoding() {
    // Fig. 16c.
    let tag = SpatialCode::paper_4bit().encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
    let mut drive = DriveBy::new(tag, 3.0).with_fog(FogLevel::Heavy).with_seed(3);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), vec![true; 4]);
    assert!(outcome.snr_db().unwrap() > 14.0);
}

#[test]
fn sixty_degree_fov_is_sufficient() {
    // Fig. 17 / §7.3.
    let tag = SpatialCode::paper_4bit().encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
    let mut cfg = ReaderConfig::fast();
    cfg.decoder.fov_rad = deg_to_rad(60.0);
    let mut drive = DriveBy::new(tag, 3.0).with_seed(4);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&cfg);
    assert_eq!(outcome.bits(), vec![true; 4]);
}

#[test]
fn driving_speed_does_not_break_decoding() {
    // Fig. 18: 30 mph with every frame kept.
    let tag = SpatialCode::paper_4bit().encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
    let mut cfg = ReaderConfig::fast();
    cfg.frame_stride = 1;
    let mut drive = DriveBy::new(tag, 3.0)
        .with_speed(ros_em::constants::mph_to_mps(30.0))
        .with_seed(5);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&cfg);
    assert_eq!(outcome.bits(), vec![true; 4]);
    assert!(outcome.snr_db().unwrap() > 14.0);
}

#[test]
fn mild_tracking_drift_is_tolerated() {
    // Fig. 16d: ≤2% drift (what Wheel-INS-class dead reckoning
    // delivers) leaves decoding intact.
    let tag = SpatialCode::paper_4bit().encode_with(ros_tests::fixture_cache(), &[true; 4]).unwrap();
    let mut drive = DriveBy::new(tag, 3.0)
        .with_tracking(ros_scene::tracking::TrackingError::drift(0.02))
        .with_seed(6);
    drive.half_span_m = 8.0;
    let outcome = drive.run(&ReaderConfig::fast());
    assert_eq!(outcome.bits(), vec![true; 4]);
}

#[test]
fn section8_extensions_deliver_their_claims() {
    // ASK: more bits in the same footprint.
    let ask = ros_core::ask::AskCode::four_level();
    assert!(ask.data_bits() > 4.0);
    // CP: +6 dB closes to ≈76 m on a commercial radar.
    let base = capacity::estimated_tag_rcs_dbsm(5, 32, true);
    let cp_range = capacity::max_decode_range_m(
        &RadarLinkBudget::commercial(),
        base + ros_em::circular::CP_RCS_GAIN_DB,
    );
    assert!(cp_range > 70.0, "CP range {cp_range:.0} m");
    // FEC: an order of magnitude at the 14 dB operating point.
    let raw = ros_dsp::stats::ook_ber(10f64.powf(14.0 / 10.0));
    let protected = ros_core::fec::block_error_probability(raw);
    assert!(protected < raw / 5.0);
}

#[test]
fn near_field_decoder_extends_capacity() {
    // The §8 NFFA direction: a 6-bit tag read inside its far field
    // fails on the FFT decoder but succeeds on the matched filter.
    use ros_core::decode::{decode, DecoderConfig};
    use ros_core::nearfield::decode_nearfield;
    use ros_core::reader::{DriveBy, ReaderConfig};

    let code6 = SpatialCode::with_bits(6, 8);
    let bits = [true, true, false, true, false, true];
    let tag = code6.encode_with(ros_tests::fixture_cache(), &bits).unwrap();
    let mut drive = DriveBy::new(tag, 4.0).with_seed(66);
    drive.half_span_m = 10.0;
    let outcome = drive.run(&ReaderConfig::fast());
    let center = ros_em::Vec3::new(0.0, 4.0, 1.0);
    let cfg = DecoderConfig::default();
    let fft = decode(&outcome.rss_trace, center, 0.0, &code6, &cfg).unwrap();
    let mf = decode_nearfield(&outcome.rss_trace, center, 0.0, &code6, &cfg).unwrap();
    assert_ne!(fft.bits, bits.to_vec(), "FFT should fail in the near field");
    assert_eq!(mf.bits, bits.to_vec(), "matched filter must succeed");
}

#[test]
fn tag_width_far_field_speed_scale_together() {
    // §5.3 table of tradeoffs, checked as monotonic relations.
    let mut last_width = 0.0;
    let mut last_ff = 0.0;
    for bits in 2..=7 {
        let a = capacity::analyze(&SpatialCode::with_bits(bits, 32), 1000.0);
        assert!(a.width_m > last_width);
        assert!(a.far_field_m > last_ff);
        last_width = a.width_m;
        last_ff = a.far_field_m;
    }
    let lam = LAMBDA_CENTER_M;
    let _ = lam;
}
