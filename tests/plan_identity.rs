//! Property tests for the plan layer: every planned transform must be
//! **bit-identical** (`f64::to_bits`) to its direct, allocating
//! reference at arbitrary sizes — including non-power-of-two CZT
//! lengths — and plan reuse through a [`PlanCache`] (across sizes,
//! through dirty scratch buffers, and across an arena reset) must
//! never change a single bit. This is the correctness half of the
//! zero-allocation steady-state contract (DESIGN.md §14); the
//! allocation half lives in `alloc_budget.rs`.

use proptest::prelude::*;
use ros_dsp::czt::{czt, CztPlan};
use ros_dsp::fft::{fft_in_place, ifft_in_place, FftPlan};
use ros_dsp::plan::PlanCache;
use ros_dsp::resample::{resample_uniform, resample_uniform_into, Sample};
use ros_dsp::window::{Window, WindowTable};
use ros_em::Complex64;

fn to_complex(values: &[(f64, f64)]) -> Vec<Complex64> {
    values
        .iter()
        .map(|&(re, im)| Complex64::new(re, im))
        .collect()
}

fn assert_complex_bits_eq(a: &[Complex64], b: &[Complex64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
        prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A planned forward+inverse FFT matches the direct in-place
    /// transforms bitwise at every power-of-two size, and the plan
    /// stays correct when reused.
    #[test]
    fn fft_plan_bit_identical_to_direct(
        values in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..257),
        inverse in any::<bool>(),
    ) {
        let n = values.len().next_power_of_two();
        let mut direct = to_complex(&values);
        direct.resize(n, Complex64::ZERO);
        let mut planned = direct.clone();

        let plan = FftPlan::new(n);
        if inverse {
            ifft_in_place(&mut direct);
            plan.process_inverse(&mut planned);
        } else {
            fft_in_place(&mut direct);
            plan.process_forward(&mut planned);
        }
        assert_complex_bits_eq(&direct, &planned)?;

        // Second pass through the same plan: still bit-identical.
        let mut again = direct.clone();
        if inverse {
            ifft_in_place(&mut direct);
            plan.process_inverse(&mut again);
        } else {
            fft_in_place(&mut direct);
            plan.process_forward(&mut again);
        }
        assert_complex_bits_eq(&direct, &again)?;
    }

    /// A planned CZT matches the direct `czt` bitwise for arbitrary
    /// (including non-power-of-two) input and output lengths and
    /// arbitrary unit-circle arc parameters — and reusing the plan
    /// through dirty scratch buffers changes nothing.
    #[test]
    fn czt_plan_bit_identical_to_direct(
        values in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 1..193),
        m in 1usize..193,
        w_angle in -0.2f64..0.2,
        a_angle in -3.0f64..3.0,
    ) {
        let x = to_complex(&values);
        let w = Complex64::cis(w_angle);
        let a = Complex64::cis(a_angle);
        let direct = czt(&x, m, w, a);

        let plan = CztPlan::new(x.len(), m, w, a);
        // Deliberately dirty, wrongly-sized scratch: the kernel must
        // resize and overwrite, never blend in stale contents.
        let mut work = vec![Complex64::new(7.0, -7.0); 3];
        let mut out = vec![Complex64::new(-1.0, 1.0); 5];
        plan.process(&x, &mut work, &mut out);
        assert_complex_bits_eq(&direct, &out)?;

        plan.process(&x, &mut work, &mut out);
        assert_complex_bits_eq(&direct, &out)?;
    }

    /// The scratch-buffer resampler matches the direct one bitwise for
    /// arbitrary traces, grids, and (dirty) scratch buffers.
    #[test]
    fn planned_resample_bit_identical_to_direct(
        points in prop::collection::vec((-2.0f64..2.0, -1e3f64..1e3), 1..80),
        n in 1usize..96,
    ) {
        let samples: Vec<Sample> = points.iter().map(|&(x, y)| Sample { x, y }).collect();
        let direct = resample_uniform(samples.clone(), -2.0, 2.0, n);

        let mut work = samples;
        let mut aux = vec![Sample { x: 9.0, y: 9.0 }; 2];
        let mut out = vec![-5.0; 7];
        resample_uniform_into(&mut work, -2.0, 2.0, n, &mut aux, &mut out);

        prop_assert_eq!(direct.len(), out.len());
        for (d, p) in direct.iter().zip(&out) {
            prop_assert_eq!(d.to_bits(), p.to_bits());
        }
    }

    /// A cached window table tapers bit-identically to the direct
    /// window at any length.
    #[test]
    fn window_table_bit_identical_to_direct(
        values in prop::collection::vec(-1e3f64..1e3, 1..257),
        which in 0usize..3,
    ) {
        let window = [Window::Rect, Window::Hann, Window::Hamming][which];
        let mut direct = values.clone();
        window.apply(&mut direct);

        let table = WindowTable::new(window, values.len());
        let mut planned = values;
        table.taper(&mut planned);

        for (d, p) in direct.iter().zip(&planned) {
            prop_assert_eq!(d.to_bits(), p.to_bits());
        }
    }
}

/// One cache, many sizes: interleaving transforms of different lengths
/// through the same [`PlanCache`] (the per-worker arena pattern) gives
/// the same bits as building each plan fresh.
#[test]
fn plan_cache_reuse_across_sizes_is_bit_identical() {
    let mut cache = PlanCache::new();
    let sizes = [8usize, 64, 8, 32, 64, 16, 8];
    for (round, &n) in sizes.iter().enumerate() {
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i + round) as f64 * 0.25, -(i as f64) * 0.5))
            .collect();
        let mut direct = signal.clone();
        fft_in_place(&mut direct);
        let mut planned = signal;
        cache.fft(n).process_forward(&mut planned);
        for (a, b) in direct.iter().zip(&planned) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
    // Four distinct FFT sizes were cached; nothing was evicted.
    assert_eq!(cache.len(), 4);

    // CZT plans of different (size, arc) coexist in the same cache.
    let x: Vec<Complex64> = (0..37).map(|i| Complex64::real(i as f64)).collect();
    let (mut work, mut out) = (Vec::new(), Vec::new());
    for m in [5usize, 21, 37, 5] {
        let w = Complex64::cis(-0.07);
        let a = Complex64::cis(0.0);
        cache.czt(x.len(), m, w, a).process(&x, &mut work, &mut out);
        let direct = czt(&x, m, w, a);
        for (d, p) in direct.iter().zip(&out) {
            assert_eq!(d.re.to_bits(), p.re.to_bits());
            assert_eq!(d.im.to_bits(), p.im.to_bits());
        }
    }
    assert_eq!(cache.len(), 4 + 3);
}

/// Arena reset: clearing the cache mid-stream and re-resolving the
/// same parameters rebuilds plans whose output is bit-identical —
/// reset costs build time, never correctness.
#[test]
fn plan_cache_reset_rebuilds_bit_identical_plans() {
    let mut cache = PlanCache::new();
    let signal: Vec<Complex64> = (0..48)
        .map(|i| Complex64::new((i as f64 * 0.73).sin(), (i as f64 * 0.31).cos()))
        .collect();
    let w = Complex64::cis(-0.04);
    let a = Complex64::cis(0.9);

    let mut fft_before = signal.clone();
    fft_before.resize(64, Complex64::ZERO);
    cache.fft(64).process_forward(&mut fft_before);
    let (mut work, mut out_before) = (Vec::new(), Vec::new());
    cache
        .czt(signal.len(), 30, w, a)
        .process(&signal, &mut work, &mut out_before);
    let taper_before = {
        let mut v: Vec<f64> = signal.iter().map(|c| c.re).collect();
        cache.window(Window::Hamming, v.len()).taper(&mut v);
        v
    };
    assert_eq!(cache.len(), 3);

    cache.clear();
    assert!(cache.is_empty());

    let mut fft_after = signal.clone();
    fft_after.resize(64, Complex64::ZERO);
    cache.fft(64).process_forward(&mut fft_after);
    let mut out_after = Vec::new();
    cache
        .czt(signal.len(), 30, w, a)
        .process(&signal, &mut work, &mut out_after);
    let taper_after = {
        let mut v: Vec<f64> = signal.iter().map(|c| c.re).collect();
        cache.window(Window::Hamming, v.len()).taper(&mut v);
        v
    };

    for (b, afters) in fft_before.iter().zip(&fft_after) {
        assert_eq!(b.re.to_bits(), afters.re.to_bits());
        assert_eq!(b.im.to_bits(), afters.im.to_bits());
    }
    for (b, afters) in out_before.iter().zip(&out_after) {
        assert_eq!(b.re.to_bits(), afters.re.to_bits());
        assert_eq!(b.im.to_bits(), afters.im.to_bits());
    }
    for (b, afters) in taper_before.iter().zip(&taper_after) {
        assert_eq!(b.to_bits(), afters.to_bits());
    }
}
