//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;
use ros_core::encode::SpatialCode;
use ros_core::rcs_model;
use ros_dsp::fft::{fft_in_place, ifft_in_place};
use ros_dsp::resample::{resample_uniform, Sample};
use ros_em::constants::LAMBDA_CENTER_M;
use ros_em::units::{db_power_sum, Db, DbAmplitude, DbPower, Dbm, Degrees, Hertz, Radians, Watts};
use ros_em::Complex64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT→IFFT is the identity for arbitrary signals.
    #[test]
    fn fft_roundtrip(values in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..64)) {
        let n = values.len().next_power_of_two();
        let mut buf: Vec<Complex64> = values
            .iter()
            .map(|&(re, im)| Complex64::new(re, im))
            .collect();
        buf.resize(n, Complex64::ZERO);
        let orig = buf.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Parseval: energy is conserved by the FFT.
    #[test]
    fn fft_parseval(values in prop::collection::vec(-1e2f64..1e2, 2..128)) {
        let n = values.len().next_power_of_two();
        let mut buf: Vec<Complex64> = values.iter().map(|&v| Complex64::real(v)).collect();
        buf.resize(n, Complex64::ZERO);
        let time: f64 = buf.iter().map(|c| c.norm_sqr()).sum();
        fft_in_place(&mut buf);
        let freq: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * (1.0 + time));
    }

    /// Resampling a constant trace returns the constant everywhere.
    #[test]
    fn resample_preserves_constants(
        xs in prop::collection::vec(-1.0f64..1.0, 2..40),
        c in -1e3f64..1e3,
        n in 2usize..64,
    ) {
        let samples: Vec<Sample> = xs.iter().map(|&x| Sample { x, y: c }).collect();
        let out = resample_uniform(samples, -1.0, 1.0, n);
        for y in out {
            prop_assert!((y - c).abs() < 1e-9);
        }
    }

    /// Any valid spatial code keeps every secondary spacing outside the
    /// coding band — the §5.2 interference-freedom guarantee.
    #[test]
    fn secondary_peaks_never_alias_into_band(bits in 2usize..8) {
        let code = SpatialCode::with_bits(bits, 8);
        let d: Vec<f64> = (1..=bits).map(|k| code.slot_position_m(k)).collect();
        let lo = d[0].abs();
        let hi = d[bits - 1].abs();
        for i in 0..bits {
            for j in 0..bits {
                if i == j { continue; }
                let s = (d[i] - d[j]).abs();
                prop_assert!(s < lo - 1e-9 || s > hi + 1e-9,
                    "secondary {s} inside [{lo}, {hi}]");
            }
        }
    }

    /// The analytic multi-stack RCS factor is bounded by M² and
    /// symmetric in u.
    #[test]
    fn rcs_factor_bounds(
        positions in prop::collection::vec(-15.0f64..15.0, 1..7),
        u in -1.0f64..1.0,
    ) {
        let pos_m: Vec<f64> = positions.iter().map(|p| p * LAMBDA_CENTER_M).collect();
        let m = pos_m.len() as f64;
        let f = rcs_model::multi_stack_factor(&pos_m, u, LAMBDA_CENTER_M);
        prop_assert!(f >= -1e-9);
        prop_assert!(f <= m * m + 1e-9);
        let f_neg = rcs_model::multi_stack_factor(&pos_m, -u, LAMBDA_CENTER_M);
        prop_assert!((f - f_neg).abs() < 1e-6 * (1.0 + f));
    }

    /// Encoding then reading back positions is consistent with the
    /// slot formula for every bit pattern.
    #[test]
    fn encode_positions_match_slots(word in 0u8..16) {
        let bits = [
            word & 1 != 0,
            word & 2 != 0,
            word & 4 != 0,
            word & 8 != 0,
        ];
        let code = SpatialCode { rows_per_stack: 8, ..SpatialCode::paper_4bit() };
        let tag = code.encode_with(ros_tests::fixture_cache(), &bits).unwrap();
        let pos = tag.stack_positions_m();
        // Reference stack always first, at 0.
        prop_assert!((pos[0]).abs() < 1e-12);
        prop_assert_eq!(pos.len(), 1 + bits.iter().filter(|&&b| b).count());
        let mut expected: Vec<f64> = vec![0.0];
        for (k, &b) in bits.iter().enumerate() {
            if b {
                expected.push(code.slot_position_m(k + 1));
            }
        }
        for (a, b) in pos.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// OOK BER is monotone decreasing in SNR.
    #[test]
    fn ber_monotone(snr_db in -5.0f64..30.0) {
        let lin = |db: f64| 10f64.powf(db / 10.0);
        let b1 = ros_dsp::stats::ook_ber(lin(snr_db));
        let b2 = ros_dsp::stats::ook_ber(lin(snr_db + 1.0));
        prop_assert!(b2 <= b1 + 1e-15);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&b1));
    }

    /// Hamming(7,4) corrects every single-bit error on every message.
    #[test]
    fn hamming_corrects_any_single_flip(
        bits in prop::collection::vec(any::<bool>(), 1..24),
        flip in any::<usize>(),
    ) {
        let coded = ros_core::fec::protect(&bits);
        let mut corrupted = coded.clone();
        let idx = flip % corrupted.len();
        corrupted[idx] = !corrupted[idx];
        let (back, fixes) = ros_core::fec::recover(&corrupted, bits.len()).unwrap();
        prop_assert_eq!(back, bits);
        prop_assert!(fixes <= 1);
    }

    /// The CZT on the unit DFT grid equals the FFT for arbitrary input.
    #[test]
    fn czt_equals_fft_on_grid(values in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 4..32)) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> = values
            .iter()
            .map(|&(re, im)| Complex64::new(re, im))
            .collect();
        x.resize(n, Complex64::ZERO);
        let w = Complex64::cis(-std::f64::consts::TAU / n as f64);
        let out = ros_dsp::czt::czt(&x, n, w, Complex64::ONE);
        let mut fft = x.clone();
        fft_in_place(&mut fft);
        for (c, f) in out.iter().zip(&fft) {
            prop_assert!((*c - *f).abs() < 1e-6 * (1.0 + f.abs()));
        }
    }

    /// Hermitian eigendecomposition: A·v = λ·v and trace preservation
    /// for random Hermitian matrices.
    #[test]
    fn eig_residual_small(seed_vals in prop::collection::vec(-2.0f64..2.0, 16)) {
        use ros_dsp::eig::{hermitian_eig, CMatrix};
        let n = 4;
        let a = CMatrix::from_fn(n, |i, j| {
            let base = seed_vals[i * n + j];
            if i == j {
                Complex64::real(base.abs() + 1.0)
            } else if i < j {
                Complex64::new(base, seed_vals[j * n + i])
            } else {
                Complex64::new(seed_vals[j * n + i], -seed_vals[i * n + j])
            }
        });
        prop_assume!(a.is_hermitian(1e-9));
        let e = hermitian_eig(&a);
        // Residual per eigenpair.
        for k in 0..n {
            for i in 0..n {
                let mut av = Complex64::ZERO;
                for j in 0..n {
                    av += a[(i, j)] * e.vectors[(j, k)];
                }
                let r = (av - e.vectors[(i, k)] * e.values[k]).abs();
                prop_assert!(r < 1e-7, "residual {r}");
            }
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * (1.0 + trace.abs()));
    }

    /// Majority-vote fusion of unanimous passes returns the consensus.
    #[test]
    fn unanimous_fusion(bits in prop::collection::vec(any::<bool>(), 1..8), n in 1usize..6) {
        use ros_core::decode::DecodeResult;
        let mk = || DecodeResult {
            bits: bits.clone(),
            slot_amplitudes: bits.iter().map(|&b| if b { 10.0 } else { 0.5 }).collect(),
            snr_linear: 100.0,
            spectrum_spacings_m: vec![],
            spectrum_mags: vec![],
            n_samples_used: 10,
            n_samples_nonfinite: 0,
            erasures: vec![],
        };
        let passes: Vec<DecodeResult> = (0..n).map(|_| mk()).collect();
        let vote = ros_core::fusion::fuse_majority(&passes);
        prop_assert_eq!(&vote.bits, &bits);
        let amp = ros_core::fusion::fuse_amplitudes(&passes);
        // Amplitude fusion may only disagree on all-zero messages
        // (nothing above the absolute gate).
        if bits.iter().any(|&b| b) {
            prop_assert_eq!(&amp.bits, &bits);
        }
    }
}

// Round-trip properties for the `ros_em::units` newtypes — the other
// half of the unit-safety story: the lint gate forbids ad-hoc
// conversions, and these properties pin down that the sanctioned ones
// are exact inverses across many decades.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Power-dB ↔ linear ratio round-trips across 12 decades.
    #[test]
    fn db_power_roundtrip(x in -6.0f64..6.0) {
        let ratio = 10f64.powf(x);
        let db = DbPower::from_ratio(ratio);
        prop_assert!((db.ratio() - ratio).abs() < 1e-9 * ratio);
        prop_assert!((DbPower::from_ratio(db.ratio()).value() - db.value()).abs() < 1e-9);
    }

    /// Amplitude-dB ↔ linear ratio round-trips across 12 decades.
    #[test]
    fn db_amplitude_roundtrip(x in -6.0f64..6.0) {
        let ratio = 10f64.powf(x);
        let db = DbAmplitude::from_ratio(ratio);
        prop_assert!((db.ratio() - ratio).abs() < 1e-9 * ratio);
        prop_assert!((DbAmplitude::from_ratio(db.ratio()).value() - db.value()).abs() < 1e-9);
    }

    /// The two dB families are genuinely distinct: the same dB number
    /// denotes an amplitude ratio whose *square* is the power ratio
    /// (20·log₁₀(a) = 10·log₁₀(a²)), so for any nonzero dB the linear
    /// readings disagree.
    #[test]
    fn db_families_distinct(db in -60.0f64..60.0) {
        let amp = DbAmplitude::new(db).ratio();
        let pow = DbPower::new(db).ratio();
        prop_assert!((amp * amp - pow).abs() < 1e-9 * (1.0 + pow));
        if db.abs() > 0.5 {
            prop_assert!((amp - pow).abs() > 1e-12 * (1.0 + pow));
        }
    }

    /// Reinterpreting between families keeps the dB number (it is free)
    /// and therefore square-roots / squares the linear ratio.
    #[test]
    fn db_reinterpret_consistent(x in -6.0f64..6.0) {
        let r = 10f64.powf(x);
        let p = DbPower::from_ratio(r);
        prop_assert_eq!(p.as_amplitude().value(), p.value());
        prop_assert!((p.as_amplitude().ratio() - r.sqrt()).abs() < 1e-9 * (1.0 + r.sqrt()));
        let a = DbAmplitude::from_ratio(r);
        prop_assert_eq!(a.as_power().value(), a.value());
        prop_assert!((a.as_power().ratio() - r * r).abs() < 1e-6 * (1.0 + r * r));
    }

    /// dBm ↔ watts round-trips from femtowatts to kilowatts.
    #[test]
    fn dbm_watts_roundtrip(x in -15.0f64..3.0) {
        let w = 10f64.powf(x);
        let dbm = Dbm::from_watts(Watts::new(w));
        prop_assert!((dbm.to_watts().value() - w).abs() < 1e-9 * w);
        prop_assert!((Watts::new(w).to_dbm().value() - dbm.value()).abs() < 1e-12);
        // And the milliwatt path agrees with the watt path.
        prop_assert!((Dbm::from_milliwatts(w * 1e3).value() - dbm.value()).abs() < 1e-9);
        prop_assert!((dbm.to_milliwatts() - w * 1e3).abs() < 1e-6 * w * 1e3);
    }

    /// `dBm + dB` is exactly linear power scaling by the gain ratio.
    #[test]
    fn dbm_gain_is_linear_scaling(p_dbm in -90.0f64..10.0, g_db in -30.0f64..30.0) {
        let before = Dbm::new(p_dbm).to_watts().value();
        let after = (Dbm::new(p_dbm) + Db::new(g_db)).to_watts().value();
        let expect = before * DbPower::new(g_db).ratio();
        prop_assert!((after - expect).abs() < 1e-9 * expect);
        // Subtracting the gain undoes it.
        let undone = (Dbm::new(p_dbm) + Db::new(g_db) - Db::new(g_db)).value();
        prop_assert!((undone - p_dbm).abs() < 1e-12);
    }

    /// Degrees ↔ radians round-trips, both directions.
    #[test]
    fn angle_roundtrip(d in -720.0f64..720.0) {
        let back = Degrees::new(d).radians().degrees().value();
        prop_assert!((back - d).abs() < 1e-9 * (1.0 + d.abs()));
        let r = d / 57.0;
        let back_r = Radians::new(r).degrees().radians().value();
        prop_assert!((back_r - r).abs() < 1e-12 * (1.0 + r.abs()));
    }

    /// Wrapping lands in (−π, π] and never changes the angle's sine or
    /// cosine.
    #[test]
    fn wrapped_angle_is_equivalent(r in -50.0f64..50.0) {
        let w = Radians::new(r).wrapped();
        prop_assert!(w.value() > -std::f64::consts::PI - 1e-12);
        prop_assert!(w.value() <= std::f64::consts::PI + 1e-12);
        prop_assert!((w.sin() - r.sin()).abs() < 1e-9);
        prop_assert!((w.cos() - r.cos()).abs() < 1e-9);
    }

    /// λ·f = c for any mmWave frequency.
    #[test]
    fn wavelength_times_frequency_is_c(f_ghz in 1.0f64..300.0) {
        let f = Hertz::new(f_ghz * 1e9);
        let c = f.wavelength().value() * f.value();
        prop_assert!((c - ros_em::constants::C).abs() < 1e-3);
    }

    /// Incoherent dB power summation matches summing linear ratios.
    #[test]
    fn db_power_sum_matches_linear(a in -40.0f64..10.0, b in -40.0f64..10.0) {
        let sum = db_power_sum([Db::new(a), Db::new(b)]);
        let lin = DbPower::new(a).ratio() + DbPower::new(b).ratio();
        prop_assert!((sum.ratio() - lin).abs() < 1e-9 * lin);
    }
}

// DSP kernel agreement properties: every "fast path" (CZT zoom,
// Goertzel single bin, non-uniform resampling) must agree with its
// textbook reference on arbitrary inputs, not just the fixtures the
// unit tests pin down.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linear resampling preserves monotonicity: a nondecreasing trace
    /// in stays nondecreasing out, including the clamped extrapolation
    /// beyond the sample hull.
    #[test]
    fn resample_preserves_monotonicity(
        steps in prop::collection::vec((0.01f64..1.0, 0.0f64..1.0), 2..40),
        n in 2usize..64,
        margin in 0.0f64..1.0,
    ) {
        let mut x = 0.0;
        let mut y = 0.0;
        let samples: Vec<Sample> = steps
            .iter()
            .map(|&(dx, dy)| {
                x += dx;
                y += dy;
                Sample { x, y }
            })
            .collect();
        let x0 = samples[0].x - margin;
        let x1 = samples[samples.len() - 1].x + margin;
        let out = resample_uniform(samples, x0, x1, n);
        prop_assert_eq!(out.len(), n);
        for w in out.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "not monotone: {} then {}", w[0], w[1]);
        }
    }

    /// The Bluestein CZT on the unit DFT grid matches the direct DFT
    /// sum for small arbitrary lengths — including non-powers-of-two,
    /// which the FFT comparison above cannot cover.
    #[test]
    fn czt_matches_direct_dft_small_n(
        values in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 2..17),
    ) {
        let n = values.len();
        let x: Vec<Complex64> = values
            .iter()
            .map(|&(re, im)| Complex64::new(re, im))
            .collect();
        let w = Complex64::cis(-std::f64::consts::TAU / n as f64);
        let out = ros_dsp::czt::czt(&x, n, w, Complex64::ONE);
        prop_assert_eq!(out.len(), n);
        for (k, got) in out.iter().enumerate() {
            let mut direct = Complex64::ZERO;
            for (i, &xi) in x.iter().enumerate() {
                let ph = -std::f64::consts::TAU * (i * k) as f64 / n as f64;
                direct += xi * Complex64::cis(ph);
            }
            prop_assert!(
                (*got - direct).abs() < 1e-6 * (1.0 + direct.abs()),
                "bin {k}: czt {got:?} vs direct {direct:?}"
            );
        }
    }

    /// Hamming(7,4) corrects up to one flip in *every* block — the
    /// full correction budget across a multi-block message, not just a
    /// single corrupted block.
    #[test]
    fn hamming_corrects_one_flip_per_block(
        bits in prop::collection::vec(any::<bool>(), 1..24),
        flips in prop::collection::vec(any::<usize>(), 6),
    ) {
        let coded = ros_core::fec::protect(&bits);
        let n_blocks = coded.len() / 7;
        let mut corrupted = coded.clone();
        let mut expected_fixes = 0;
        for (block, flip) in flips.iter().take(n_blocks).enumerate() {
            // Offset 0..=6 flips that bit of the block; 7 leaves the
            // block clean, so the budget itself is also exercised.
            let offset = flip % 8;
            if offset < 7 {
                corrupted[block * 7 + offset] ^= true;
                expected_fixes += 1;
            }
        }
        let (back, fixes) = ros_core::fec::recover(&corrupted, bits.len()).unwrap();
        prop_assert_eq!(back, bits);
        prop_assert_eq!(fixes, expected_fixes);
        prop_assert!(fixes <= n_blocks, "fixes beyond the correction budget");
    }

    /// CFAR never reports an SNR outside the ±120 dB physical clamp —
    /// for any power profile, including NaN/±∞ poisoned cells, zero
    /// floors, and a deliberately injected dominant spike.
    #[test]
    fn cfar_snr_always_inside_clamp(
        cells in prop::collection::vec((any::<u8>(), 0.0f64..1e6), 8..96),
        spike_at in any::<usize>(),
        spike_db in 0.0f64..200.0,
    ) {
        use ros_dsp::cfar::{ca_cfar, CfarParams};
        // Half the cells stay ordinary power readings; the rest are
        // poisoned with the degenerate values a corrupted frame can
        // produce (NaN, ±∞, a dead zero floor).
        let mut power: Vec<f64> = cells
            .iter()
            .map(|&(tag, v)| match tag % 8 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => v,
            })
            .collect();
        let idx = spike_at % power.len();
        power[idx] = 10f64.powf(spike_db / 10.0);
        for det in ca_cfar(&power, &CfarParams::default()) {
            let snr = det.snr_db();
            prop_assert!(snr.is_finite(), "non-finite SNR from cell {}", det.index);
            prop_assert!(
                (-120.0..=120.0).contains(&snr),
                "SNR {snr} dB outside the ±120 dB clamp"
            );
            prop_assert!(det.power.is_finite() && det.noise.is_finite());
        }
    }

    /// Goertzel-style single-bin evaluation agrees with the FFT at
    /// every on-grid bin (the FFT is unnormalized; `single_bin`
    /// divides by N).
    #[test]
    fn goertzel_matches_fft_bin(
        values in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 2..65),
        k_raw in any::<usize>(),
    ) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> = values
            .iter()
            .map(|&(re, im)| Complex64::new(re, im))
            .collect();
        x.resize(n, Complex64::ZERO);
        let k = k_raw % n;
        let got = ros_dsp::goertzel::single_bin(&x, k as f64 / n as f64);
        let mut spec = x.clone();
        fft_in_place(&mut spec);
        let want = spec[k] / n as f64;
        prop_assert!(
            (got - want).abs() < 1e-9 * (1.0 + want.abs()),
            "bin {k}/{n}: goertzel {got:?} vs fft {want:?}"
        );
    }
}
