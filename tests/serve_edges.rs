//! Edge-case tests for the corridor reader service (ISSUE 9
//! satellite 3): zero-encounter corridors, single-frame passes, and
//! the K=1 reuse contract — one mounted-tag design shared by every
//! encounter must build each table kind exactly once per run,
//! observable through the `cache.*` counters.

use ros_serve::{run_corridor, CorridorConfig};

fn base() -> CorridorConfig {
    CorridorConfig {
        n_radars: 2,
        n_vehicles: 2,
        n_tags: 1,
        channel_capacity: 16,
        chunk_frames: 64,
        ..CorridorConfig::default()
    }
}

/// A corridor with no vehicles (or no tags) has zero encounters: the
/// service must start its workers, produce nothing, and shut down
/// cleanly with an empty, conserved report — not hang on an empty
/// channel or fabricate reads.
#[test]
fn zero_encounter_corridor_completes_empty() {
    for cfg in [
        CorridorConfig {
            n_vehicles: 0,
            ..base()
        },
        CorridorConfig {
            n_tags: 0,
            ..base()
        },
    ] {
        assert!(cfg.encounters().is_empty());
        for workers in [1usize, 4] {
            let r = run_corridor(&cfg, workers);
            assert!(r.reads.is_empty(), "no pass, no read");
            assert_eq!(r.decodes, 0);
            assert_eq!(r.frames_produced, 0);
            assert_eq!(r.frames_consumed, 0);
            assert_eq!(r.stalls, 0);
            assert_eq!(r.cache_misses, 0, "no tag was built, no table either");
            assert_eq!(r.cache_hits, 0);
            assert!(r.log().is_empty());
        }
    }
}

/// A frame stride larger than any pass collapses every pass to a
/// single frame — far below the decode minimum. Every pass must still
/// produce a read carrying the typed decode error (never a fabricated
/// empty word), conservation must hold, and the degenerate log must
/// stay worker-count invariant.
#[test]
fn single_frame_passes_surface_typed_failures() {
    let mut cfg = base();
    cfg.reader.frame_stride = 100_000;
    let passes = cfg.encounters().len();
    let reference = run_corridor(&cfg, 1);
    assert_eq!(reference.reads.len(), passes, "every pass reports");
    assert_eq!(
        reference.frames_produced,
        u64::try_from(passes).unwrap_or(u64::MAX),
        "one frame per pass"
    );
    assert_eq!(reference.frames_produced, reference.frames_consumed);
    for r in &reference.reads {
        assert!(r.bits.is_none(), "no bits from a one-sample pass");
        assert!(r.error.is_some(), "typed error travels with the read");
    }
    assert_eq!(reference.decoded_reads(), 0);
    let two = run_corridor(&cfg, 2);
    assert_eq!(two.log(), reference.log(), "degenerate log still invariant");
}

/// K = 1: one mounted-tag design serves all encounters (the corridor's
/// tags share one stack geometry, and a single radar means a single
/// word), so a whole run must build exactly one shaping profile and
/// one scatterer table — one `cache.<kind>.miss` each — no matter how
/// many vehicles pass.
#[test]
fn k1_corridor_misses_each_table_kind_exactly_once() {
    let cfg = CorridorConfig {
        n_radars: 1,
        n_vehicles: 4,
        n_tags: 1,
        ..base()
    };
    let (report, obs) = ros_obs::capture_scope(ros_obs::Level::Summary, || run_corridor(&cfg, 2));
    assert_eq!(report.reads.len(), 4);
    // The corridor path exercises exactly two table kinds: the DE
    // shaping profile and the per-frequency row-scatterer table.
    assert_eq!(report.cache_misses, 2, "one build per table kind");
    assert!(report.cache_hits > 0, "reuse must register as hits");
    for metric in [
        r#""name":"cache.shaping.miss","kind":"counter","value":1"#,
        r#""name":"cache.pattern.miss","kind":"counter","value":1"#,
    ] {
        assert!(
            obs.metrics.contains(metric),
            "missing {metric} in: {}",
            obs.metrics
        );
    }
}
