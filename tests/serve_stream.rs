//! Integration tests for the streaming reader path and the corridor
//! service (`ros-serve`): bit-compatibility with the batch reader,
//! worker-count invariance of the aggregate read log, explicit
//! backpressure, and the decode-verdict regressions (failed decodes
//! must surface their error, erasure accounting must be exact).

use ros_core::encode::SpatialCode;
use ros_core::reader::{DriveBy, PassVerdict, ReaderConfig};
use ros_core::stream::{DriveBySource, FrameSource, PassId, SignRead, StreamingReader};
use ros_core::tag::Tag;
use ros_fault::{FaultKind, FaultPlan};
use ros_serve::{run_corridor, CorridorConfig};
use std::sync::Mutex;

/// Serializes thread-pinning tests (ThreadGuard state is global).
static LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _pin = ros_exec::ThreadGuard::pin(Some(n));
    f()
}

fn tag8(bits: &[bool]) -> Tag {
    SpatialCode {
        rows_per_stack: 8,
        ..SpatialCode::paper_4bit()
    }
    .encode(bits)
    .unwrap()
}

fn pid() -> PassId {
    PassId {
        radar: 0,
        vehicle: 0,
        tag: 0,
        seq: 0,
    }
}

/// Drives one pass through the streaming path in `chunk`-event pulls.
fn stream_read(drive: &DriveBy, cfg: &ReaderConfig, chunk: usize) -> SignRead {
    let mut src = DriveBySource::new(drive.clone(), cfg, pid());
    let mut reader = StreamingReader::new(cfg.decoder);
    let mut events = Vec::new();
    let mut read = None;
    loop {
        events.clear();
        let more = src.next_events(chunk, &mut events);
        for ev in events.drain(..) {
            if let Some(r) = reader.ingest(ev) {
                read = Some(r);
            }
        }
        if !more {
            break;
        }
    }
    read.unwrap_or_else(|| reader.finish().pop().expect("one pass"))
}

// ---------------------------------------------------------------------
// Streaming ≡ batch, at every thread count.
// ---------------------------------------------------------------------

/// The streaming source + incremental reader reproduce the batch
/// reader bit for bit — and since the batch reader is itself
/// thread-count invariant, so is the streamed read.
#[test]
fn streaming_read_matches_batch_at_every_thread_count() {
    let cfg = ReaderConfig::fast();
    let drive = DriveBy::new(tag8(&[true, false, true, true]), 2.0).with_seed(4242);
    let streamed = stream_read(&drive, &cfg, 57);
    for t in [1usize, 2, 8] {
        let batch = with_threads(t, || drive.run(&cfg));
        assert_eq!(
            streamed.bits.as_deref(),
            batch.decoded_bits(),
            "bits @ {t} threads"
        );
        assert_eq!(
            streamed.snr_db.map(f64::to_bits),
            batch.snr_db().map(f64::to_bits),
            "snr @ {t} threads"
        );
        assert_eq!(streamed.verdict, batch.verdict, "verdict @ {t} threads");
    }
}

/// Same equivalence under a composite fault plan (drops, duplicates,
/// bursts, tracking spikes) — the RNG alignment contract holds on the
/// streaming path too.
#[test]
fn streaming_read_matches_batch_under_fault_storm() {
    let cfg = ReaderConfig::fast();
    let drive = DriveBy::new(tag8(&[false, true, true, true]), 2.5)
        .with_seed(31337)
        .with_tracking(ros_scene::tracking::TrackingError {
            drift: 0.04,
            jitter_m: 0.015,
            seed: 8,
        })
        .with_faults(
            FaultPlan::new(55)
                .with(FaultKind::FrameDrop, 0.10)
                .with(FaultKind::FrameDuplicate, 0.06)
                .with(FaultKind::InterferenceBurst { excess_db: 10.0 }, 0.05)
                .with(FaultKind::TrackingSpike { magnitude_m: 0.3 }, 0.04),
        );
    let batch = drive.run(&cfg);
    for chunk in [3usize, 41, 500] {
        let streamed = stream_read(&drive, &cfg, chunk);
        assert_eq!(streamed.bits.as_deref(), batch.decoded_bits(), "chunk {chunk}");
        assert_eq!(
            streamed.snr_db.map(f64::to_bits),
            batch.snr_db().map(f64::to_bits),
            "chunk {chunk}"
        );
        assert_eq!(streamed.n_frames, batch.rss_trace.len(), "chunk {chunk}");
    }
}

// ---------------------------------------------------------------------
// Corridor service: worker-count invariance + conservation.
// ---------------------------------------------------------------------

fn corridor() -> CorridorConfig {
    CorridorConfig {
        n_radars: 3,
        n_vehicles: 2,
        n_tags: 1,
        channel_capacity: 16,
        chunk_frames: 64,
        ..CorridorConfig::default()
    }
}

/// The aggregate read log is bit-identical at 1, 2, and 8 workers, and
/// every frame produced is consumed (no silent drops anywhere).
#[test]
fn corridor_read_log_is_worker_count_invariant() {
    let cfg = corridor();
    let reference = run_corridor(&cfg, 1);
    assert_eq!(reference.reads.len(), 6);
    assert!(reference.decoded_reads() >= 1, "smoke floor: >= 1 decode");
    for workers in [2usize, 8] {
        let r = run_corridor(&cfg, workers);
        assert_eq!(r.log(), reference.log(), "{workers} workers");
        assert_eq!(r.log_digest(), reference.log_digest(), "{workers} workers");
        assert_eq!(r.frames_produced, r.frames_consumed, "{workers} workers");
        assert_eq!(r.frames_produced, reference.frames_produced);
        assert!(r.max_occupancy <= r.capacity, "{workers} workers");
    }
}

/// `workers = 0` resolves through `ros_exec::threads()`, so the pinned
/// executor width drives the service the same way it drives `par_map`
/// — and the log still matches the serial reference.
#[test]
fn corridor_auto_worker_resolution_follows_executor() {
    let cfg = corridor();
    let reference = run_corridor(&cfg, 1);
    let auto = with_threads(3, || run_corridor(&cfg, 0));
    assert_eq!(auto.workers, 3);
    assert_eq!(auto.log(), reference.log());
}

// ---------------------------------------------------------------------
// Backpressure: bounded channels block (and count), never drop.
// ---------------------------------------------------------------------

/// A deliberately slow consumer forces the producer into its blocking
/// path: occupancy never exceeds the bound, every blocking send is
/// counted, and every item still arrives (conservation).
#[test]
fn slow_consumer_backpressure_blocks_and_conserves() {
    use ros_exec::channel::bounded;
    const CAP: usize = 4;
    const ITEMS: usize = 200;
    let (tx, rx) = bounded::<usize>(CAP);
    let received = ros_exec::scope(|s| {
        let producer = s.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i).expect("receiver alive");
            }
        });
        let consumer = s.spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                std::thread::sleep(std::time::Duration::from_micros(150));
                got.push(v);
            }
            (got, rx.stats())
        });
        producer.join().expect("producer");
        consumer.join().expect("consumer")
    });
    let (got, stats) = received;
    assert_eq!(got.len(), ITEMS, "no frame lost or duplicated");
    assert_eq!(got, (0..ITEMS).collect::<Vec<_>>(), "FIFO order");
    assert!(stats.max_occupancy <= CAP, "bound respected");
    assert!(stats.stalls > 0, "slow consumer must stall the producer");
}

/// At the service level: a tiny channel forces stalls, the report
/// counts them, and conservation still holds.
#[test]
fn corridor_with_tiny_channel_stalls_but_conserves() {
    let cfg = CorridorConfig {
        channel_capacity: 2,
        chunk_frames: 32,
        ..corridor()
    };
    let r = run_corridor(&cfg, 2);
    assert!(r.stalls > 0, "capacity 2 must backpressure the producers");
    assert!(r.max_occupancy <= 2);
    assert_eq!(r.frames_produced, r.frames_consumed);
    assert_eq!(r.log(), run_corridor(&corridor(), 2).log(), "capacity does not change physics");
}

// ---------------------------------------------------------------------
// Decode-verdict regressions (the two satellite bugfixes).
// ---------------------------------------------------------------------

/// A pass with too few samples to decode must surface the typed error:
/// `Outcome.decode` is `Err`, the verdict is `NoTag`, and there is no
/// flattened `bits: []` masquerading as a legitimate empty read.
#[test]
fn failed_decode_surfaces_error_instead_of_empty_bits() {
    let mut cfg = ReaderConfig::fast();
    cfg.frame_stride = 100_000; // one sample per pass: below any decode minimum
    let outcome = DriveBy::new(tag8(&[true; 4]), 2.0).run(&cfg);
    let err = outcome.decode.as_ref().expect_err("decode must fail");
    assert!(matches!(
        err,
        ros_core::decode::DecodeError::TooFewSamples { .. }
    ));
    assert_eq!(outcome.verdict, PassVerdict::NoTag);
    assert_eq!(outcome.decoded_bits(), None, "no fabricated read");
    assert!(outcome.bits().is_empty(), "lossy view degrades explicitly");

    // Same contract on the streaming path.
    let streamed = stream_read(&DriveBy::new(tag8(&[true; 4]), 2.0), &cfg, 64);
    assert_eq!(streamed.verdict, PassVerdict::NoTag);
    assert!(streamed.bits.is_none());
    assert!(streamed.error.is_some(), "typed error travels with the read");
}

/// Erasure indices are sanitized at the verdict boundary: aliased
/// duplicates and out-of-range indices no longer over-count erased
/// slots (the historical `len - erasures.len()` under-counted
/// `bits_resolved`).
#[test]
fn verdict_sanitizes_aliased_and_out_of_range_erasures() {
    use ros_core::decode::DecodeResult;
    let d = DecodeResult {
        bits: vec![true, false, true, true],
        erasures: vec![1, 1, 9, 3, 3],
        ..DecodeResult::default()
    };
    let v = PassVerdict::from_decode(Ok(&d));
    match v {
        PassVerdict::PartialDecode {
            bits_resolved,
            erasures,
        } => {
            assert_eq!(erasures, vec![1, 3], "deduped, bounds-checked, sorted");
            assert_eq!(bits_resolved, 2, "exact: 4 bits - 2 distinct erased");
            assert_eq!(bits_resolved + erasures.len(), d.bits.len());
        }
        other => panic!("expected PartialDecode, got {other:?}"),
    }

    // All-bogus erasures collapse to a clean verdict.
    let clean = DecodeResult {
        bits: vec![true; 4],
        erasures: vec![7, 8, 9],
        ..DecodeResult::default()
    };
    assert_eq!(PassVerdict::from_decode(Ok(&clean)), PassVerdict::Clean);
}

// ---------------------------------------------------------------------
// Memory boundedness of the streaming reader.
// ---------------------------------------------------------------------

/// Decoding many sequential passes through one reader never buffers
/// more than one pass's frames: peak memory is independent of how many
/// passes flow through.
#[test]
fn sequential_passes_keep_peak_memory_at_one_pass() {
    let cfg = ReaderConfig::fast();
    let mut reader = StreamingReader::new(cfg.decoder);
    let mut single_pass_peak = 0usize;
    for round in 0..5u32 {
        let drive = DriveBy::new(tag8(&[true; 4]), 2.0).with_seed(u64::from(round) + 1);
        let mut src = DriveBySource::new(
            drive,
            &cfg,
            PassId {
                seq: round,
                ..pid()
            },
        );
        let mut events = Vec::new();
        loop {
            let more = src.next_events(64, &mut events);
            for ev in events.drain(..) {
                reader.ingest(ev);
            }
            if !more {
                break;
            }
        }
        if round == 0 {
            single_pass_peak = reader.peak_buffered();
        }
    }
    assert_eq!(reader.decodes(), 5);
    assert_eq!(reader.buffered(), 0);
    assert_eq!(
        reader.peak_buffered(),
        single_pass_peak,
        "peak does not grow with pass count"
    );
}
