//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface used by `crates/bench`: named benchmark
//! functions and groups, parametric benchmarks via [`BenchmarkId`],
//! and [`Bencher::iter`]. Instead of criterion's statistical analysis
//! it runs a short warm-up followed by a fixed measurement window and
//! prints the median per-iteration time — enough to compare hot paths
//! between commits in an offline environment.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterisation of a benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Runs `f` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: aim for samples of ≥ ~200 µs so
        // Instant overhead stays negligible.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_micros(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        self.iters_per_sample = iters;

        let deadline = Instant::now() + Duration::from_millis(250);
        while Instant::now() < deadline && self.samples.len() < 50 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(f64::total_cmp);
        ns[ns.len() / 2]
    }
}

/// Times `f` with the stub's warm-up + measurement loop and returns
/// the median per-iteration time in nanoseconds.
///
/// Programmatic access for perf harnesses that write machine-readable
/// reports (the upstream crate exposes this via its analysis output;
/// the stub keeps a minimal equivalent).
pub fn bench_median_ns<O, F: FnMut() -> O>(f: F) -> f64 {
    let mut b = Bencher::new();
    b.iter(f);
    b.median_ns_per_iter()
}

fn report(name: &str, b: &Bencher) {
    let ns = b.median_ns_per_iter();
    if ns.is_nan() {
        println!("{name:<50} (no samples)");
    } else if ns < 1e3 {
        println!("{name:<50} {ns:>10.1} ns/iter");
    } else if ns < 1e6 {
        println!("{name:<50} {:>10.2} µs/iter", ns / 1e3);
    } else {
        println!("{name:<50} {:>10.3} ms/iter", ns / 1e6);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored in the stub (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored in the stub (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a parametric benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| black_box((0..100).sum::<u64>()));
        assert!(b.median_ns_per_iter() > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
