//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The RoS build environment is fully offline, so this vendored crate
//! implements the slice of the proptest 1.x API the workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(..)]` inner attribute,
//! * range strategies (`-1.0f64..1.0`, `2usize..64`, `0u8..16`, …),
//! * tuple strategies, [`prop::collection::vec`], [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (FNV-1a of the test name), there is **no shrinking**
//! (the failing case is printed verbatim), and rejected cases
//! (`prop_assume!`) are simply skipped rather than regenerated.

use std::fmt;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// Deterministic test-case RNG (xoshiro256++, same core as the
/// vendored `rand` stub but independent so the crates stay decoupled).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw below 0");
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Strategy wrapping a constant (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        let x = 10f64.powf(mag / 20.0);
        if rng.next_u64() & 1 == 1 {
            -x
        } else {
            x
        }
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T: Arbitrary> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection-size specifications accepted by [`prop::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// `prop::…` namespace, mirroring upstream module paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S: Strategy> {
            element: S,
            size: SizeRange,
        }

        /// Builds a vector strategy (mirrors
        /// `proptest::collection::vec`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let (lo, hi) = (self.size.lo, self.size.hi);
                assert!(hi > lo, "empty size range");
                let len = lo + (rng.below((hi - lo) as u64) as usize);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Items a test file typically glob-imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "{} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left != right,
            "{} != {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases.saturating_mul(8) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Built before the body runs: the body may move the
                    // generated values.
                    let mut case_desc = ::std::string::String::new();
                    $(
                        case_desc.push_str(stringify!($arg));
                        case_desc.push_str(" = ");
                        case_desc.push_str(&format!("{:?}", &$arg));
                        case_desc.push_str("; ");
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {
                            ran += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}\n  case: {case_desc}");
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..9) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vecs_respect_size(v in prop::collection::vec(0u8..255, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..100, 0u32..100)) {
            let (a, b) = pair;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(-1.0f64..1.0, 16)) {
            prop_assert_eq!(v.len(), 16);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("foo");
        let mut b = crate::TestRng::for_test("foo");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
