//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The RoS build environment is fully offline (no crates.io registry),
//! so the workspace vendors the *small* slice of the rand 0.8 API it
//! actually uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for `f64`/`bool` and other primitives,
//! * [`Rng::gen_range`] over half-open and inclusive numeric ranges,
//! * [`Rng::gen_bool`].
//!
//! The generator and the sampling algorithms are **stream-compatible**
//! with rand 0.8: `StdRng` is ChaCha12 with rand_core's PCG-based
//! `seed_from_u64`, uniform floats use the `[1, 2)` exponent trick
//! (`sample_single`), and integer ranges use Lemire widening-multiply
//! rejection with rand's zone approximation. Simulation tests tuned
//! against upstream draw sequences therefore see identical values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed.
    ///
    /// Matches rand_core 0.6: the seed bytes are produced by PCG32
    /// (XSH-RR output function) so the resulting stream is identical
    /// to upstream `StdRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from process-unique "entropy".
    ///
    /// Offline stub: derives a seed from the process id and a bumped
    /// counter — unique per call, not cryptographic.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64((std::process::id() as u64) << 32 ^ n ^ 0x9e37_79b9_7f4a_7c15)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`]
/// (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 bits, multiply, in [0, 1).
        let x = rng.next_u64() >> 11;
        x as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let x = rng.next_u32() >> 8;
        x as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 compares the most significant bit via a sign test.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl Standard for i16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::<f64>::sample_single`.
        debug_assert!(self.start < self.end, "cannot sample from empty f64 range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        value1_2 * scale + offset
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::<f64>::sample_single_inclusive`:
        // scale chosen so the maximal mantissa hits `high` exactly.
        let (low, high) = (*self.start(), *self.end());
        debug_assert!(low <= high, "cannot sample from empty f64 range");
        let max_rand = f64::from_bits((1023u64 << 52) | ((1u64 << 52) - 1));
        let scale = (high - low) / (max_rand - 1.0);
        let offset = low - scale;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        value1_2 * scale + offset
    }
}

// rand 0.8 `UniformInt::sample_single[_inclusive]`: Lemire's
// widening-multiply rejection. Small types (≤16 bit) compute the zone
// by modulus; wider types use the shift approximation — both exactly
// as upstream, so the number of words consumed matches too.
macro_rules! int_sample_range {
    ($($t:ty, $unsigned:ty, $ularge:ty, $bits:expr, $use_mod:expr);* $(;)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $ularge;
                match sample_lemire::<R, $ularge>(rng, range, $bits, $use_mod) {
                    Some(off) => self.start.wrapping_add(off as $t),
                    // Unreachable: a non-empty exclusive range is > 0.
                    None => self.start,
                }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let range = (hi.wrapping_sub(lo) as $unsigned as $ularge).wrapping_add(1);
                match sample_lemire::<R, $ularge>(rng, range, $bits, $use_mod) {
                    Some(off) => lo.wrapping_add(off as $t),
                    // range wrapped to 0: the full integer domain.
                    None => Standard::draw(rng),
                }
            }
        }
    )*};
}

trait LemireWord: Copy + Into<u64> {
    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl LemireWord for u32 {
    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl LemireWord for u64 {
    fn draw_word<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

fn sample_lemire<R, U>(rng: &mut R, range: U, bits: u32, use_mod: bool) -> Option<u64>
where
    R: RngCore + ?Sized,
    U: LemireWord,
{
    let range64: u64 = range.into();
    if range64 == 0 {
        return None;
    }
    let word_max: u64 = if bits == 32 { u32::MAX as u64 } else { u64::MAX };
    let zone: u64 = if use_mod {
        let ints_to_reject = (word_max - range64 + 1) % range64;
        word_max - ints_to_reject
    } else {
        (range64 << range64.leading_zeros().saturating_sub(64 - bits))
            .wrapping_sub(1)
            & word_max
    };
    loop {
        let v: u64 = U::draw_word(rng).into();
        let m: u128 = (v as u128) * (range64 as u128);
        let lo = (m as u64) & word_max;
        if lo <= zone {
            return Some((m >> bits) as u64);
        }
    }
}

int_sample_range! {
    usize, usize, u64, 64, false;
    u64, u64, u64, 64, false;
    i64, u64, u64, 64, false;
    u32, u32, u32, 32, false;
    i32, u32, u32, 32, false;
    u16, u16, u32, 32, true;
    i16, u16, u32, 32, true;
    u8, u8, u32, 32, true;
    i8, u8, u32, 32, true;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // rand 0.8 Bernoulli: 64-bit integer threshold compare;
        // `p == 1.0` short-circuits without consuming a draw.
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const BLOCK_WORDS: usize = 16;
    // rand_chacha buffers four 64-byte blocks; the logical word order
    // is identical to sequential block generation.
    const BUFFER_WORDS: usize = 4 * BLOCK_WORDS;

    // On x86-64 the SSE2 refill replaces the scalar rounds; they stay
    // compiled for other targets and for the stream-compat tests.
    #[cfg(any(test, not(target_arch = "x86_64")))]
    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// One ChaCha double round (column + diagonal), exposed for the
    /// RFC 8439 test vector check.
    #[cfg(any(test, not(target_arch = "x86_64")))]
    pub(crate) fn double_round(s: &mut [u32; 16]) {
        quarter_round(s, 0, 4, 8, 12);
        quarter_round(s, 1, 5, 9, 13);
        quarter_round(s, 2, 6, 10, 14);
        quarter_round(s, 3, 7, 11, 15);
        quarter_round(s, 0, 5, 10, 15);
        quarter_round(s, 1, 6, 11, 12);
        quarter_round(s, 2, 7, 8, 13);
        quarter_round(s, 3, 4, 9, 14);
    }

    /// [`quarter_round`] over four independent blocks held lane-wise
    /// (`s[word][block]`). Each lane is a separate block's state, so
    /// the element-wise loops carry no cross-lane dependencies — the
    /// classic multi-block ChaCha layout, producing the exact same
    /// keystream as running the blocks one at a time. Portable
    /// fallback for the SSE2 refill below.
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn quarter_round_x4(s: &mut [[u32; 4]; 16], a: usize, b: usize, c: usize, d: usize) {
        for l in 0..4 {
            s[a][l] = s[a][l].wrapping_add(s[b][l]);
            s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(16);
        }
        for l in 0..4 {
            s[c][l] = s[c][l].wrapping_add(s[d][l]);
            s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(12);
        }
        for l in 0..4 {
            s[a][l] = s[a][l].wrapping_add(s[b][l]);
            s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(8);
        }
        for l in 0..4 {
            s[c][l] = s[c][l].wrapping_add(s[d][l]);
            s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(7);
        }
    }

    /// [`double_round`] in the four-lane layout of [`quarter_round_x4`].
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn double_round_x4(s: &mut [[u32; 4]; 16]) {
        quarter_round_x4(s, 0, 4, 8, 12);
        quarter_round_x4(s, 1, 5, 9, 13);
        quarter_round_x4(s, 2, 6, 10, 14);
        quarter_round_x4(s, 3, 7, 11, 15);
        quarter_round_x4(s, 0, 5, 10, 15);
        quarter_round_x4(s, 1, 6, 11, 12);
        quarter_round_x4(s, 2, 7, 8, 13);
        quarter_round_x4(s, 3, 4, 9, 14);
    }

    /// ChaCha12 generator, stream-compatible with rand 0.8's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// Key words 4..12 of the initial state.
        key: [u32; 8],
        /// 64-bit block counter (state words 12, 13).
        counter: u64,
        /// 64-bit stream id (state words 14, 15); zero for `from_seed`.
        stream: u64,
        buf: [u32; BUFFER_WORDS],
        index: usize,
    }

    impl StdRng {
        const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        const DOUBLE_ROUNDS: usize = 6; // ChaCha12

        /// Generates the buffer's four blocks in one pass, lane-wise
        /// interleaved (`state[word][block]`) so every round operates
        /// on four independent lanes at once — bit-for-bit the same
        /// keystream as four sequential block computations, at a
        /// fraction of the scalar cost.
        #[cfg(not(target_arch = "x86_64"))]
        fn refill(&mut self) {
            let mut state = [[0u32; 4]; 16];
            for (w, &c) in Self::CONSTANTS.iter().enumerate() {
                state[w] = [c; 4];
            }
            for (w, &k) in self.key.iter().enumerate() {
                state[4 + w] = [k; 4];
            }
            for b in 0..4 {
                let counter = self.counter.wrapping_add(b as u64);
                state[12][b] = counter as u32;
                state[13][b] = (counter >> 32) as u32;
                state[14][b] = self.stream as u32;
                state[15][b] = (self.stream >> 32) as u32;
            }
            let mut working = state;
            for _ in 0..Self::DOUBLE_ROUNDS {
                double_round_x4(&mut working);
            }
            for b in 0..4 {
                for w in 0..BLOCK_WORDS {
                    self.buf[b * BLOCK_WORDS + w] = working[w][b].wrapping_add(state[w][b]);
                }
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }

        /// SSE2 variant of the lane-wise refill: each of the sixteen
        /// state words holds its four blocks' lanes in one 128-bit
        /// register, so a quarter round is a handful of packed adds,
        /// xors and shift-pair rotates. SSE2 is part of the x86-64
        /// baseline, so no runtime feature detection is needed, and
        /// the packed integer ops are exactly the scalar
        /// `wrapping_add`/`^`/`rotate_left` per lane — the keystream
        /// is bit-identical to the portable path (pinned by
        /// `interleaved_refill_matches_sequential_blocks`).
        #[cfg(target_arch = "x86_64")]
        fn refill(&mut self) {
            use core::arch::x86_64::{
                __m128i, _mm_add_epi32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32,
                _mm_slli_epi32, _mm_srli_epi32, _mm_storeu_si128, _mm_xor_si128,
            };

            macro_rules! rotl {
                ($v:expr, $r:literal) => {
                    _mm_or_si128(_mm_slli_epi32($v, $r), _mm_srli_epi32($v, 32 - $r))
                };
            }

            // SAFETY: every intrinsic used here is an SSE2 packed
            // integer register op (baseline on x86-64); the only
            // memory access is `_mm_storeu_si128` into a live,
            // 16-byte `[u32; 4]`, which the unaligned store permits.
            unsafe {
                let mut state = [_mm_set1_epi32(0); 16];
                for (w, &c) in Self::CONSTANTS.iter().enumerate() {
                    state[w] = _mm_set1_epi32(c as i32);
                }
                for (w, &k) in self.key.iter().enumerate() {
                    state[4 + w] = _mm_set1_epi32(k as i32);
                }
                let ctr = |b: u64| self.counter.wrapping_add(b);
                // `_mm_set_epi32` takes lanes high-to-low: lane `b`
                // carries block `counter + b`.
                state[12] = _mm_set_epi32(
                    ctr(3) as u32 as i32,
                    ctr(2) as u32 as i32,
                    ctr(1) as u32 as i32,
                    ctr(0) as u32 as i32,
                );
                state[13] = _mm_set_epi32(
                    (ctr(3) >> 32) as u32 as i32,
                    (ctr(2) >> 32) as u32 as i32,
                    (ctr(1) >> 32) as u32 as i32,
                    (ctr(0) >> 32) as u32 as i32,
                );
                state[14] = _mm_set1_epi32(self.stream as u32 as i32);
                state[15] = _mm_set1_epi32((self.stream >> 32) as u32 as i32);

                let mut x = state;
                macro_rules! qr {
                    ($a:literal, $b:literal, $c:literal, $d:literal) => {
                        x[$a] = _mm_add_epi32(x[$a], x[$b]);
                        x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 16);
                        x[$c] = _mm_add_epi32(x[$c], x[$d]);
                        x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 12);
                        x[$a] = _mm_add_epi32(x[$a], x[$b]);
                        x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 8);
                        x[$c] = _mm_add_epi32(x[$c], x[$d]);
                        x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 7);
                    };
                }
                for _ in 0..Self::DOUBLE_ROUNDS {
                    qr!(0, 4, 8, 12);
                    qr!(1, 5, 9, 13);
                    qr!(2, 6, 10, 14);
                    qr!(3, 7, 11, 15);
                    qr!(0, 5, 10, 15);
                    qr!(1, 6, 11, 12);
                    qr!(2, 7, 8, 13);
                    qr!(3, 4, 9, 14);
                }

                let mut lanes = [0u32; 4];
                for w in 0..BLOCK_WORDS {
                    let sum = _mm_add_epi32(x[w], state[w]);
                    _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), sum);
                    for b in 0..4 {
                        self.buf[b * BLOCK_WORDS + w] = lanes[b];
                    }
                }
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }

        /// The expanded key words, for the stream-compatibility test.
        #[cfg(test)]
        pub(crate) fn key_for_test(&self) -> [u32; 8] {
            self.key
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            StdRng {
                key,
                counter: 0,
                stream: 0,
                buf: [0; BUFFER_WORDS],
                index: BUFFER_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUFFER_WORDS {
                self.refill();
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }

        // Exactly rand_core's BlockRng::next_u64 indexing, including
        // the buffer-edge case that pairs the stale last word with the
        // first word of the freshly generated buffer.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let len = BUFFER_WORDS;
            if self.index < len - 1 {
                let lo = self.buf[self.index] as u64;
                let hi = self.buf[self.index + 1] as u64;
                self.index += 2;
                (hi << 32) | lo
            } else if self.index >= len {
                self.refill();
                let lo = self.buf[0] as u64;
                let hi = self.buf[1] as u64;
                self.index = 2;
                (hi << 32) | lo
            } else {
                let x = self.buf[len - 1] as u64;
                self.refill();
                let y = self.buf[0] as u64;
                self.index = 1;
                (y << 32) | x
            }
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Returns a freshly seeded generator (stand-in for `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chacha_round_function_matches_rfc8439() {
        // RFC 8439 §2.3.2 block-function vector (20 rounds): validates
        // the quarter-round math and the add-initial-state step that
        // the 12-round `StdRng` core shares.
        let initial: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, // constants
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, // key
            0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, // key
            0x00000001, 0x09000000, 0x4a000000, 0x00000000, // ctr+nonce
        ];
        let mut state = initial;
        for _ in 0..10 {
            crate::rngs::double_round(&mut state);
        }
        for (w, s) in state.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*s);
        }
        assert_eq!(state[0], 0xe4e7f110);
        assert_eq!(state[1], 0x15593bd1);
    }

    #[test]
    fn interleaved_refill_matches_sequential_blocks() {
        // The four-lane refill must emit the exact keystream of four
        // sequential single-block computations (the rand_chacha buffer
        // contract). Reference: scalar per-block ChaCha12 built from
        // the same `double_round` the RFC vector pins.
        let mut rng = StdRng::seed_from_u64(0xD00D);
        let mut words = Vec::new();
        for _ in 0..4 * 64 {
            words.push(rng.next_u32());
        }

        let seeded = StdRng::seed_from_u64(0xD00D);
        let mut expect = Vec::new();
        for counter in 0u64..16 {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
            state[4..12].copy_from_slice(&seeded.key_for_test());
            state[12] = counter as u32;
            state[13] = (counter >> 32) as u32;
            let mut working = state;
            for _ in 0..6 {
                crate::rngs::double_round(&mut working);
            }
            for (w, s) in working.iter_mut().zip(state.iter()) {
                expect.push(w.wrapping_add(*s));
            }
        }
        assert_eq!(words, expect);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let n = rng.gen_range(5usize..9);
            assert!((5..9).contains(&n));
            let m = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&m));
            let b = rng.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn integer_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "frac {frac}");
        }
    }
}
