#!/bin/sh
# Pre-merge verification: build, test, then the static-analysis gate.
# Each stage must pass before the next runs; any failure aborts with a
# non-zero exit.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> xtask lint (unit-safety / no-panic / no-raw-cast gate)"
cargo run -q -p xtask -- lint

echo "verify: all checks passed"
