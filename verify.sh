#!/bin/sh
# Pre-merge verification: build, test, determinism at multiple thread
# counts, then the static-analysis gate. Each stage must pass before
# the next runs; any failure aborts with a non-zero exit.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

# The executor honours ROS_EXEC_THREADS as the pool-size default; the
# determinism suite must hold whether the process defaults to one
# worker or several (it also pins 1/2/8 internally -- this exercises
# the env-override path on top). The suite includes the planned-path
# twins (capture_batch_with + detect_with, decode_into under FFT and
# CZT plans), so plan/scratch reuse is re-proven bit-identical across
# thread counts on every verify pass.
echo "==> determinism suite at ROS_EXEC_THREADS=1"
ROS_EXEC_THREADS=1 cargo test -q -p ros-tests --test determinism

echo "==> determinism suite at ROS_EXEC_THREADS=4"
ROS_EXEC_THREADS=4 cargo test -q -p ros-tests --test determinism

# Steady-state allocation budget: one full planned frame (capture ->
# detect -> spotlight -> decode) must allocate exactly zero bytes
# after warm-up. Release mode so the measured path is the shipped
# code, not debug scaffolding.
echo "==> allocation budget (tests/alloc_budget.rs, release)"
cargo test -q --release -p ros-tests --test alloc_budget

# Debt ratchet: per-rule baselined lint debt may only decrease
# through history (lint-ratchet.json pins a ceiling for every
# registered rule; all are 0 except dead-pub). Fails on regression
# AND on an unlocked improvement, forcing `xtask ratchet --tighten`
# commits.
echo "==> xtask ratchet (lint debt ceilings)"
cargo run -q -p xtask -- ratchet

# Static-analysis gate (ros-lint): token-level rules over every
# workspace source, judged against lint-baseline.json. The run also
# writes the machine-readable findings artifact, which lint-artifact
# re-parses (proving it is well-formed JSON) and summarizes per rule.
echo "==> xtask lint (ros-lint gate + findings artifact)"
cargo run -q -p xtask -- lint --json target/lint.json
echo "==> xtask lint-artifact (artifact parses; per-rule counts)"
cargo run -q -p xtask -- lint-artifact target/lint.json
# The semantic rules (DESIGN.md section 13) must be present in the
# artifact's rule catalog — a missing ID means the gate silently
# stopped checking a determinism/allocation contract.
for rule in nondet-iter no-wallclock alloc-in-hot-path; do
    grep -q "\"id\": \"$rule\"" target/lint.json || {
        echo "verify: lint artifact missing semantic rule '$rule'" >&2
        exit 1
    }
done
# Concurrency rules (DESIGN.md section 17): the lock/channel-graph
# pass and the suppression audit must stay in the catalog too — the
# deadlock and blocking-under-lock contracts are only as alive as
# their rule IDs in the artifact.
echo "==> lint lockgraph (concurrency rules present in artifact)"
for rule in lock-order blocking-under-lock guard-across-hot-call stale-suppression; do
    grep -q "\"id\": \"$rule\"" target/lint.json || {
        echo "verify: lint artifact missing concurrency rule '$rule'" >&2
        exit 1
    }
done

# Lint self-runtime budget: the artifact carries per-pass wall times;
# the whole gate (lex + scan + callgraph + lockgraph + rules) must
# finish inside a generous ceiling so an accidentally quadratic pass
# is caught before it makes verify unbearable. Observed total is
# ~0.6 s debug; the ceiling is 120 s.
echo "==> lint self-runtime (total_ns ceiling)"
TOTAL_NS=$(sed -n 's/.*"total_ns": \([0-9][0-9]*\).*/\1/p' target/lint.json)
if [ -z "$TOTAL_NS" ]; then
    echo "verify: lint artifact missing timings.total_ns" >&2
    exit 1
fi
if [ "$TOTAL_NS" -gt 120000000000 ]; then
    echo "verify: lint gate took ${TOTAL_NS} ns (> 120 s ceiling)" >&2
    exit 1
fi

# Registry drift: baseline and ratchet must agree with the compiled-in
# rule registry (no debt or ceiling for unknown rules, a ceiling for
# every registered rule).
echo "==> xtask lint-config (registry vs baseline/ratchet drift)"
cargo run -q -p xtask -- lint-config

# Telemetry smoke: a full-pipeline drive-by with ROS_OBS=1 must emit a
# parseable ndjson trace that covers every stage of the pipeline.
echo "==> telemetry smoke (ROS_OBS=1 drive-by trace)"
OBS_TRACE=target/obs_smoke.ndjson
rm -f "$OBS_TRACE"
ROS_OBS=1 ROS_OBS_FILE="$OBS_TRACE" cargo run -q --release -p bench -- smoke
for stage in radar.capture_batch reader.detect dsp.dbscan detector.score decode; do
    grep -q "\"stage\":\"$stage\"" "$OBS_TRACE" || {
        echo "verify: telemetry trace missing span for stage '$stage'" >&2
        exit 1
    }
done
grep -q '"ev":"metric"' "$OBS_TRACE" || {
    echo "verify: telemetry trace missing metric export" >&2
    exit 1
}

# Fault smoke: the reduced fault matrix must run clean (the command
# itself fails on any 1-vs-2-thread divergence or panic) and its
# telemetry must carry the fault counters.
echo "==> fault-injection smoke (bench faults --smoke)"
FAULT_TRACE=target/fault_smoke.ndjson
rm -f "$FAULT_TRACE"
ROS_OBS=1 ROS_OBS_FILE="$FAULT_TRACE" cargo run -q --release -p bench -- faults --smoke
grep -q '"name":"fault\.' "$FAULT_TRACE" || {
    echo "verify: fault trace missing fault.* counters" >&2
    exit 1
}
grep -q '"name":"reader.frames_degraded"' "$FAULT_TRACE" || {
    echo "verify: fault trace missing reader.frames_degraded" >&2
    exit 1
}

# Corridor service smoke: the reduced corridor must decode at least
# one pass, prove its read log identical at 1 vs 8 workers (the bench
# exits non-zero itself on divergence; the grep double-checks), and
# emit the serve.* metric family. The smoke artifact lands under
# target/, never touching the checked-in BENCH_serve.json.
echo "==> corridor serve smoke (bench serve --smoke)"
SERVE_TRACE=target/serve_smoke.ndjson
rm -f "$SERVE_TRACE"
SERVE_OUT=$(ROS_OBS=1 ROS_OBS_FILE="$SERVE_TRACE" cargo run -q --release -p bench -- serve --smoke)
echo "$SERVE_OUT"
echo "$SERVE_OUT" | grep -q "logs identical" || {
    echo "verify: serve smoke: worker-count invariance failed" >&2
    exit 1
}
echo "$SERVE_OUT" | grep -Eq "\([1-9][0-9]* decoded\)" || {
    echo "verify: serve smoke decoded no pass" >&2
    exit 1
}
grep -q '"name":"serve\.' "$SERVE_TRACE" || {
    echo "verify: serve trace missing serve.* metrics" >&2
    exit 1
}

# Geometry-cache stage: the serve smoke above already runs its
# corridor twice against one shared GeomCache in a single process (the
# cold/warm halves of the cache comparison), so the trace must carry
# nonzero cache.hit traffic, a per-kind miss breakdown, and the
# console must prove the cached/uncached read logs bit-identical.
echo "==> geometry cache smoke (cache.* counters from the serve run)"
grep -Eq '"name":"cache\.hit","kind":"counter","value":[1-9]' "$SERVE_TRACE" || {
    echo "verify: serve trace has no nonzero cache.hit counter" >&2
    exit 1
}
grep -Eq '"name":"cache\.(shaping|pattern)\.miss","kind":"counter","value":[1-9]' "$SERVE_TRACE" || {
    echo "verify: serve trace missing per-kind cache miss counters" >&2
    exit 1
}
echo "$SERVE_OUT" | grep -q "cache decodes/s:.*logs identical" || {
    echo "verify: serve smoke: cache-temperature invariance failed" >&2
    exit 1
}

# Benchmark-record hygiene: every BENCH_*.json checked in at the root
# is either "valid": true or explicitly waived (with a reason) in
# .bench-waivers. An invalid record can document a limitation, but
# never silently.
echo "==> benchmark record validity (BENCH_*.json vs .bench-waivers)"
for rec in BENCH_*.json; do
    [ -e "$rec" ] || continue
    grep -q '"valid": true' "$rec" && continue
    grep -qx "$rec" .bench-waivers || {
        echo "verify: $rec is not \"valid\": true and not waived in .bench-waivers" >&2
        exit 1
    }
done

echo "verify: all checks passed"
